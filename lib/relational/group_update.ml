(** Group updates ΔR over base relations, with atomic application.

    The translation algorithms of Sections 3 and 4 produce a group of tuple
    insertions or deletions; the framework of Fig. 3 applies them as a unit.
    [apply] rolls back on any failure so a rejected group leaves the
    database unchanged. *)

type op =
  | Insert of string * Tuple.t  (** relation name, tuple *)
  | Delete of string * Value.t list  (** relation name, key *)

type t = op list

exception Apply_error of string

let size (g : t) = List.length g

let is_empty (g : t) = g = []

let inverse_of db = function
  | Insert (name, t) -> (
      (* undoing an insert: delete unless the identical tuple pre-existed *)
      let r = Database.relation db name in
      let key = Tuple.key_of (Relation.schema r) t in
      match Relation.find_by_key r key with
      | Some t' when Tuple.equal t t' -> None
      | Some _ | None -> Some (Delete (name, key)))
  | Delete (name, key) -> (
      match Database.find_by_key db name key with
      | Some t -> Some (Insert (name, t))
      | None -> None)

let apply_op db = function
  | Insert (name, t) -> Database.insert db name t
  | Delete (name, key) -> ignore (Database.delete_key db name key)

(** [apply db g] performs every operation of [g] in order; if any operation
    fails (e.g. a key violation), previously applied operations are undone
    and {!Apply_error} is raised. *)
let apply db (g : t) =
  let undo = ref [] in
  try
    List.iter
      (fun op ->
        let inv = inverse_of db op in
        apply_op db op;
        match inv with Some i -> undo := i :: !undo | None -> ())
      g
  with e ->
    List.iter (apply_op db) !undo;
    raise
      (Apply_error
         (Fmt.str "group update rolled back: %s" (Printexc.to_string e)))

let pp_op ppf = function
  | Insert (name, t) -> Fmt.pf ppf "+%s%a" name Tuple.pp t
  | Delete (name, key) ->
      Fmt.pf ppf "-%s(%a)" name (Fmt.list ~sep:(Fmt.any ", ") Value.pp) key

let pp = Fmt.list ~sep:Fmt.sp pp_op
