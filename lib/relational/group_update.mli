(** Group updates ΔR over base relations, applied atomically.

    The translation algorithms of Sections 3 and 4 emit a group of tuple
    insertions or deletions; the framework of Fig. 3 executes them as a
    unit, rolling back on failure. *)

type op =
  | Insert of string * Tuple.t  (** relation name, tuple *)
  | Delete of string * Value.t list  (** relation name, key *)

type t = op list

exception Apply_error of string

val size : t -> int
val is_empty : t -> bool

val apply : Database.t -> t -> unit
(** perform every operation in order; on any failure (e.g. a key
    violation) previously applied operations are undone.
    @raise Apply_error after rolling back. *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
