(** Relation schemas with primary keys, and database schemas.

    Keys matter twice in the paper: they enforce integrity on base
    updates, and the key-preservation condition of Section 4.1 is defined
    in terms of them. *)

type attribute = { aname : string; ty : Value.ty }

type relation = {
  rname : string;
  attrs : attribute array;
  key : int array;  (** positions of key attributes, in attribute order *)
}

type db = { relations : relation list }

exception Schema_error of string

val schema_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** raise {!Schema_error} with a formatted message *)

val relation : string -> attribute list -> key:string list -> relation
(** [relation name attrs ~key] builds a relation schema.
    @raise Schema_error on duplicate attributes, an empty key, or a key
    attribute that is not declared. *)

val attr : string -> Value.ty -> attribute

val attr_index : relation -> string -> int
(** position of an attribute by name. @raise Schema_error if absent. *)

val has_attr : relation -> string -> bool
val arity : relation -> int
val key_names : relation -> string list
val is_key_attr : relation -> int -> bool

val db : relation list -> db
(** @raise Schema_error on duplicate relation names. *)

val find_relation : db -> string -> relation
(** @raise Schema_error if absent. *)

val mem_relation : db -> string -> bool

val pp_relation : Format.formatter -> relation -> unit
