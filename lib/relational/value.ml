(** Typed atomic values stored in relations and semantic attributes.

    The paper's data model needs string and integer attributes for the
    registrar and synthetic schemas, plus a finite-domain type (booleans)
    so that the insertion heuristic of Section 4.3 has variables it can
    encode into SAT. [Null] is used only as a placeholder inside tuple
    templates before instantiation; it never appears in a base relation. *)

type ty =
  | TInt
  | TStr
  | TBool

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Null

let ty_of = function
  | Int _ -> Some TInt
  | Str _ -> Some TStr
  | Bool _ -> Some TBool
  | Null -> None

(** [has_ty ty v] holds when [v] inhabits [ty]; [Null] inhabits none. *)
let has_ty ty v =
  match ty_of v with
  | Some ty' -> ty = ty'
  | None -> false

(** Finite-domain types can be enumerated exhaustively; the SAT encoding of
    Section 4.3 only introduces propositional variables for these. *)
let finite_domain = function
  | TBool -> Some [ Bool false; Bool true ]
  | TInt | TStr -> None

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Null, Null -> true
  | (Int _ | Str _ | Bool _ | Null), _ -> false

let compare a b =
  let rank = function Int _ -> 0 | Str _ -> 1 | Bool _ -> 2 | Null -> 3 in
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Null, Null -> 0
  | _ -> Stdlib.compare (rank a) (rank b)

let hash = function
  | Int x -> Hashtbl.hash (0, x)
  | Str s -> Hashtbl.hash (1, s)
  | Bool b -> Hashtbl.hash (2, b)
  | Null -> Hashtbl.hash 3

let to_string = function
  | Int x -> string_of_int x
  | Str s -> s
  | Bool b -> string_of_bool b
  | Null -> "null"

let pp ppf v =
  match v with
  | Int x -> Fmt.int ppf x
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Null -> Fmt.string ppf "null"

let pp_ty ppf = function
  | TInt -> Fmt.string ppf "int"
  | TStr -> Fmt.string ppf "string"
  | TBool -> Fmt.string ppf "bool"

(** Convenience constructors used pervasively in tests and examples. *)
let int x = Int x

let str s = Str s
let bool b = Bool b
