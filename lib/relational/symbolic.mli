(** Symbolic SPJ evaluation over tuples enriched with variables
    (Appendix A).

    The insertion encoder evaluates each view query on the database
    incremented with tuple templates whose unknown fields are variables:
    predicates between known values are decided outright, and predicates
    touching a variable are deferred as equality constraints attached to
    the produced row. *)

type sval =
  | Known of Value.t
  | Var of int  (** variable id; its type is tracked by the caller *)

type srow = sval array

type constr = Ceq of sval * sval
(** an undecided equality: at least one side is a variable *)

type result_row = { row : srow; constraints : constr list }

type indexed
(** a persistent, append-only set of ground symbolic rows carrying its
    own per-column-set hash indexes — lets a caller that evaluates many
    queries against a slowly growing row set (the insertion translator's
    gen_A pseudo-relations) amortize index construction across {!run}
    calls *)

(** One FROM position's source: a concrete relation with a row filter
    (so [I_i \ X_i] needs no copying), explicit symbolic rows (the
    tuple-template sets U_i), or a reusable pre-indexed ground row set. *)
type source =
  | Concrete of Relation.t * (Tuple.t -> bool)
  | Rows of srow list
  | Indexed of indexed

exception Symbolic_error of string

val of_tuple : Tuple.t -> srow
val sval_equal : sval -> sval -> bool

val indexed_create : unit -> indexed

val indexed_append : indexed -> srow -> unit
(** rows join in iteration order (append at the end); every already
    materialized index is maintained incrementally.
    @raise Symbolic_error if the row contains a variable *)

val indexed_clear : indexed -> unit
val indexed_length : indexed -> int

val run :
  Schema.db -> Spj.t -> ?params:Tuple.t -> source array -> result_row list
(** [run schema q ~params sources] evaluates [q] with FROM position [i]
    ranging over [sources.(i)] ([params] are ground), returning every
    producible row with the conjunction of symbolic equalities under which
    it exists. Hash joins are used whenever both probe key and build
    column are ground; symbolic rows fall back to residual scans.
    @raise Symbolic_error on arity mismatch or unbound aliases. *)

val pp_sval : Format.formatter -> sval -> unit
val pp_constr : Format.formatter -> constr -> unit
val pp_row : Format.formatter -> srow -> unit
