(** Relation schemas with primary keys.

    A relation schema is an ordered list of typed attributes, a nonempty
    subset of which forms the primary key. Keys matter twice in the paper:
    they enforce integrity on base updates, and the key-preservation
    condition of Section 4.1 is defined in terms of them. *)

type attribute = { aname : string; ty : Value.ty }

type relation = {
  rname : string;
  attrs : attribute array;
  key : int array;  (** positions of key attributes, in attribute order *)
}

type db = { relations : relation list }

exception Schema_error of string

let schema_error fmt = Fmt.kstr (fun s -> raise (Schema_error s)) fmt

(** [relation name attrs ~key] builds a relation schema, checking that
    attribute names are distinct and that every key attribute exists. *)
let relation rname attr_list ~key =
  let attrs = Array.of_list attr_list in
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun a ->
      if Hashtbl.mem seen a.aname then
        schema_error "relation %s: duplicate attribute %s" rname a.aname;
      Hashtbl.add seen a.aname ())
    attrs;
  if key = [] then schema_error "relation %s: empty key" rname;
  let index_of name =
    let rec go i =
      if i >= Array.length attrs then
        schema_error "relation %s: key attribute %s not declared" rname name
      else if attrs.(i).aname = name then i
      else go (i + 1)
    in
    go 0
  in
  let key = Array.of_list (List.map index_of key) in
  let sorted = Array.copy key in
  Array.sort compare sorted;
  Array.iteri
    (fun i k ->
      if i > 0 && sorted.(i - 1) = k then
        schema_error "relation %s: duplicate key attribute" rname)
    sorted;
  { rname; attrs; key }

let attr name ty = { aname = name; ty }

(** [attr_index r name] is the position of attribute [name] in [r].
    @raise Schema_error if the attribute does not exist. *)
let attr_index r name =
  let rec go i =
    if i >= Array.length r.attrs then
      schema_error "relation %s has no attribute %s" r.rname name
    else if r.attrs.(i).aname = name then i
    else go (i + 1)
  in
  go 0

let has_attr r name = Array.exists (fun a -> a.aname = name) r.attrs

let arity r = Array.length r.attrs

let key_names r = Array.to_list (Array.map (fun i -> r.attrs.(i).aname) r.key)

let is_key_attr r i = Array.exists (fun k -> k = i) r.key

(** A database schema is a collection of relation schemas with distinct
    names. *)
let db relations =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun r ->
      if Hashtbl.mem seen r.rname then
        schema_error "duplicate relation name %s" r.rname;
      Hashtbl.add seen r.rname ())
    relations;
  { relations }

let find_relation db name =
  match List.find_opt (fun r -> r.rname = name) db.relations with
  | Some r -> r
  | None -> schema_error "unknown relation %s" name

let mem_relation db name = List.exists (fun r -> r.rname = name) db.relations

let pp_relation ppf r =
  Fmt.pf ppf "%s(%a)" r.rname
    (Fmt.array ~sep:(Fmt.any ", ") (fun ppf a ->
         Fmt.pf ppf "%s%s:%a"
           (if is_key_attr r (attr_index r a.aname) then "*" else "")
           a.aname Value.pp_ty a.ty))
    r.attrs
