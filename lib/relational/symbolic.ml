(** Symbolic SPJ evaluation over tuples enriched with variables.

    Appendix A of the paper evaluates each view query on the database
    incremented with tuple templates whose unknown fields are variables, in
    order to (a) enumerate would-be view tuples that signal side effects and
    (b) collect, for each, the equality condition under which it is
    produced. SQL cannot run on tuples with variables, so we implement the
    evaluation directly: predicates between known values are decided, and
    predicates touching a variable are accumulated as symbolic equality
    constraints attached to the produced row. *)

type sval =
  | Known of Value.t
  | Var of int  (** variable identifier; its type is tracked by the caller *)

type srow = sval array

type constr = Ceq of sval * sval
(** an equality that could not be decided: at least one side is a variable *)

type result_row = { row : srow; constraints : constr list }

exception Symbolic_error of string

let symbolic_error fmt = Fmt.kstr (fun s -> raise (Symbolic_error s)) fmt

(** A persistent, append-only collection of ground symbolic rows carrying
    its own per-column-set hash indexes, so a caller that evaluates many
    queries against a slowly growing row set (the insertion translator's
    gen_A pseudo-relations) amortizes index construction across calls
    instead of rebuilding per {!run}. *)
type indexed = {
  mutable ix_rows : srow array;  (** live prefix [0, ix_len) *)
  mutable ix_len : int;
  ix_indexes : (int list, (Value.t list, srow list) Hashtbl.t) Hashtbl.t;
}

(** A symbolic source for one FROM position: a concrete relation with a
    row filter (so [I_i \ X_i] needs no copying), an explicit list of
    symbolic rows (the tuple-template sets [U_i], or [X_i ∩ I_i]), or a
    reusable pre-indexed ground row set. *)
type source =
  | Concrete of Relation.t * (Tuple.t -> bool)
  | Rows of srow list
  | Indexed of indexed

let of_tuple (t : Tuple.t) : srow = Array.map (fun v -> Known v) t

let indexed_create () =
  { ix_rows = [||]; ix_len = 0; ix_indexes = Hashtbl.create 4 }

let indexed_length ix = ix.ix_len

let indexed_clear ix =
  ix.ix_rows <- [||];
  ix.ix_len <- 0;
  Hashtbl.reset ix.ix_indexes

let ix_key cols (row : srow) =
  List.map
    (fun c ->
      match row.(c) with
      | Known v -> v
      | Var x -> symbolic_error "Indexed source: variable ?%d in row" x)
    cols

let indexed_append ix (row : srow) =
  if ix.ix_len = Array.length ix.ix_rows then begin
    let a = Array.make (max 16 (2 * ix.ix_len)) [||] in
    Array.blit ix.ix_rows 0 a 0 ix.ix_len;
    ix.ix_rows <- a
  end;
  ix.ix_rows.(ix.ix_len) <- row;
  ix.ix_len <- ix.ix_len + 1;
  (* keep every materialized index current; buckets hold newest first,
     matching a fresh build (which scans in order and prepends) *)
  Hashtbl.iter
    (fun cols idx ->
      let k = ix_key cols row in
      let prev = Option.value ~default:[] (Hashtbl.find_opt idx k) in
      Hashtbl.replace idx k (row :: prev))
    ix.ix_indexes

let indexed_index ix cols =
  match Hashtbl.find_opt ix.ix_indexes cols with
  | Some idx -> idx
  | None ->
      let idx = Hashtbl.create (max 16 ix.ix_len) in
      for i = 0 to ix.ix_len - 1 do
        let row = ix.ix_rows.(i) in
        let k = ix_key cols row in
        let prev = Option.value ~default:[] (Hashtbl.find_opt idx k) in
        Hashtbl.replace idx k (row :: prev)
      done;
      Hashtbl.replace ix.ix_indexes cols idx;
      idx

let sval_equal a b =
  match (a, b) with
  | Known x, Known y -> Value.equal x y
  | Var x, Var y -> x = y
  | Known _, Var _ | Var _, Known _ -> false

(* Decide or defer an equality between two symbolic values. *)
type verdict = True | False | Defer of constr

let decide a b : verdict =
  match (a, b) with
  | Known x, Known y -> if Value.equal x y then True else False
  | Var x, Var y when x = y -> True
  | _ -> Defer (Ceq (a, b))

let constr_equal (Ceq (a, b)) (Ceq (c, d)) =
  (sval_equal a c && sval_equal b d) || (sval_equal a d && sval_equal b c)

let add_constr c cs = if List.exists (constr_equal c) cs then cs else c :: cs

let iter_source f = function
  | Concrete (r, keep) -> Relation.iter (fun t -> if keep t then f (of_tuple t)) r
  | Rows rows -> List.iter f rows
  | Indexed ix ->
      for i = 0 to ix.ix_len - 1 do
        f ix.ix_rows.(i)
      done

(** [run db q ~params sources] evaluates [q] with FROM position [i] ranging
    over [sources.(i)]. [params] are ground. Returns every produced view row
    with the (possibly empty) conjunction of symbolic equalities under which
    it exists.

    The plan mirrors {!Eval.run}: left-deep, with hash joins on join columns
    whenever both the probe key and the build column are ground. Rows of a
    concrete source are always ground; symbolic rows with a variable in a
    build column fall back to a residual scan for that join. *)
let run (db : Schema.db) (q : Spj.t) ?(params = [||]) (sources : source array)
    : result_row list =
  let n = List.length q.Spj.from in
  if Array.length sources <> n then
    symbolic_error "query %s: %d sources for %d FROM positions" q.Spj.qname
      (Array.length sources) n;
  let alias_position alias =
    let rec go i = function
      | [] -> symbolic_error "query %s: unbound alias %s" q.Spj.qname alias
      | (a, _) :: _ when a = alias -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 q.Spj.from
  in
  let col_index alias attr =
    let r = Schema.find_relation db (Spj.relation_of_alias q alias) in
    Schema.attr_index r attr
  in
  let operand_sval (env : srow array) (op : Spj.operand) : sval =
    match op with
    | Spj.Const v -> Known v
    | Spj.Param k ->
        if k >= Array.length params then
          symbolic_error "query %s: missing parameter $%d" q.Spj.qname k
        else Known params.(k)
    | Spj.Col (alias, attr) ->
        (env.(alias_position alias)).(col_index alias attr)
  in
  let pred_level (Spj.Eq (a, b)) =
    let lv = function
      | Spj.Col (alias, _) -> alias_position alias
      | Spj.Const _ | Spj.Param _ -> 0
    in
    max (lv a) (lv b)
  in
  let preds_at = Array.make n [] in
  List.iter
    (fun p ->
      let lvl = pred_level p in
      preds_at.(lvl) <- p :: preds_at.(lvl))
    q.Spj.where;
  let join_key_of_pred i (Spj.Eq (a, b)) =
    match (a, b) with
    | Spj.Col (aa, at), Spj.Col (ba, bt) ->
        let pa = alias_position aa and pb = alias_position ba in
        if pa = i && pb < i then Some ((aa, at), Spj.Col (ba, bt))
        else if pb = i && pa < i then Some ((ba, bt), Spj.Col (aa, at))
        else None
    | Spj.Col (aa, at), other when alias_position aa = i -> Some ((aa, at), other)
    | other, Spj.Col (ba, bt) when alias_position ba = i -> Some ((ba, bt), other)
    | _ -> None
  in
  let results = ref [] in
  (* Per-position join access paths, as (lookup, residual): symbolic rows
     with a variable in an indexed column are kept aside for residual
     scanning. Concrete relations probe their own persistent
     {!Relation.index_on} (built once, maintained across updates) and
     [Indexed] sources their own carried indexes, so repeated runs pay no
     per-call index construction; only [Rows] sources — small template
     sets — build a throwaway table here. *)
  let index_cache = Hashtbl.create 4 in
  let build_index i cols =
    match Hashtbl.find_opt index_cache (i, cols) with
    | Some x -> x
    | None ->
        let x =
          match sources.(i) with
          | Concrete (r, keep) ->
              let idx = Relation.index_on r cols in
              let lookup key =
                match Hashtbl.find_opt idx key with
                | None -> []
                | Some ts ->
                    List.filter_map
                      (fun t -> if keep t then Some (of_tuple t) else None)
                      ts
              in
              (lookup, [])
          | Indexed ix ->
              let idx = indexed_index ix cols in
              let lookup key =
                Option.value ~default:[] (Hashtbl.find_opt idx key)
              in
              (lookup, [])
          | Rows rows ->
              let idx = Hashtbl.create (max 16 (List.length rows)) in
              let residual = ref [] in
              List.iter
                (fun row ->
                  let ground = ref true in
                  let key =
                    List.map
                      (fun c ->
                        match row.(c) with
                        | Known v -> v
                        | Var _ ->
                            ground := false;
                            Value.Null)
                      cols
                  in
                  if !ground then
                    let prev =
                      Option.value ~default:[] (Hashtbl.find_opt idx key)
                    in
                    Hashtbl.replace idx key (row :: prev)
                  else residual := row :: !residual)
                rows;
              let lookup key =
                Option.value ~default:[] (Hashtbl.find_opt idx key)
              in
              (lookup, !residual)
        in
        Hashtbl.replace index_cache (i, cols) x;
        x
  in
  let rec extend i (env : srow array) (cs : constr list) =
    if i = n then begin
      let row =
        Array.of_list
          (List.map (fun (_, op) -> operand_sval env op) q.Spj.select)
      in
      results := { row; constraints = cs } :: !results
    end
    else begin
      let joins, filters =
        List.partition_map
          (fun p ->
            match join_key_of_pred i p with
            | Some jk -> Either.Left jk
            | None -> Either.Right p)
          preds_at.(i)
      in
      let try_row row cs0 =
        let env' = Array.copy env in
        env'.(i) <- row;
        (* apply residual filters plus any join predicates not used for
           hashing (handled below by passing them in [filters']) *)
        let rec check cs = function
          | [] -> Some cs
          | Spj.Eq (a, b) :: rest -> (
              match decide (operand_sval env' a) (operand_sval env' b) with
              | True -> check cs rest
              | False -> None
              | Defer c -> check (add_constr c cs) rest)
        in
        match check cs0 filters with
        | None -> ()
        | Some cs' -> extend (i + 1) env' cs'
      in
      match joins with
      | [] -> iter_source (fun row -> try_row row cs) sources.(i)
      | _ ->
          (* Evaluate probe-side operands; if any is symbolic we cannot hash
             on that column — demote such joins to filters. *)
          let hashable, deferred =
            List.partition_map
              (fun ((alias, attr), probe_op) ->
                match operand_sval env probe_op with
                | Known v -> Either.Left (col_index alias attr, v)
                | Var _ ->
                    Either.Right (Spj.Eq (Spj.Col (alias, attr), probe_op)))
              joins
          in
          let filters' = deferred @ filters in
          let try_row_f row cs0 =
            let env' = Array.copy env in
            env'.(i) <- row;
            let rec check cs = function
              | [] -> Some cs
              | Spj.Eq (a, b) :: rest -> (
                  match decide (operand_sval env' a) (operand_sval env' b) with
                  | True -> check cs rest
                  | False -> None
                  | Defer c -> check (add_constr c cs) rest)
            in
            match check cs0 filters' with
            | None -> ()
            | Some cs' -> extend (i + 1) env' cs'
          in
          if hashable = [] then
            iter_source (fun row -> try_row_f row cs) sources.(i)
          else begin
            let cols = List.map fst hashable in
            let key = List.map snd hashable in
            let lookup, residual = build_index i cols in
            List.iter (fun row -> try_row_f row cs) (lookup key);
            (* Symbolic rows bypass the hash; re-check the hashed equalities
               as symbolic constraints. *)
            List.iter
              (fun row ->
                let env' = Array.copy env in
                env'.(i) <- row;
                let rec check cs = function
                  | [] -> Some cs
                  | (c, v) :: rest -> (
                      match decide row.(c) (Known v) with
                      | True -> check cs rest
                      | False -> None
                      | Defer cnstr -> check (add_constr cnstr cs) rest)
                in
                match check cs hashable with
                | None -> ()
                | Some cs' -> (
                    let rec checkf cs = function
                      | [] -> Some cs
                      | Spj.Eq (a, b) :: rest -> (
                          match
                            decide (operand_sval env' a) (operand_sval env' b)
                          with
                          | True -> checkf cs rest
                          | False -> None
                          | Defer cnstr -> checkf (add_constr cnstr cs) rest)
                    in
                    match checkf cs' filters' with
                    | None -> ()
                    | Some cs'' -> extend (i + 1) env' cs''))
              residual
          end
    end
  in
  extend 0 (Array.make n [||]) [];
  List.rev !results

let pp_sval ppf = function
  | Known v -> Value.pp ppf v
  | Var x -> Fmt.pf ppf "?%d" x

let pp_constr ppf (Ceq (a, b)) = Fmt.pf ppf "%a = %a" pp_sval a pp_sval b

let pp_row ppf (r : srow) =
  Fmt.pf ppf "(%a)" (Fmt.array ~sep:(Fmt.any ", ") pp_sval) r
