(** SPJ query evaluation over concrete databases.

    The plan is a left-deep pipeline following the FROM order: for each new
    alias we partition the WHERE conjunction into (a) local predicates
    (column = constant/parameter, or both columns on this alias), applied as
    a filter while building, (b) join predicates connecting this alias to
    already-bound ones, used as hash-join keys, and (c) deferred predicates
    mentioning aliases not yet bound. Hash joins keep the evaluator linear
    per joined pair, which is what lets the benchmark sweeps of Section 5
    reach 100K-tuple bases. *)

type env = Tuple.t array
(** one bound tuple per FROM position *)

exception Eval_error of string

let eval_error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

let alias_position (q : Spj.t) alias =
  let rec go i = function
    | [] -> eval_error "query %s: unbound alias %s" q.Spj.qname alias
    | (a, _) :: _ when a = alias -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 q.Spj.from

(* Column position of [alias.attr] inside that alias's tuple. *)
let col_index db (q : Spj.t) alias attr =
  let r = Schema.find_relation db (Spj.relation_of_alias q alias) in
  Schema.attr_index r attr

let operand_value db q ~params (env : env) (op : Spj.operand) : Value.t =
  match op with
  | Spj.Const v -> v
  | Spj.Param k ->
      if k >= Array.length params then
        eval_error "query %s: missing parameter $%d" q.Spj.qname k
      else params.(k)
  | Spj.Col (alias, attr) ->
      let p = alias_position q alias in
      (env.(p)).(col_index db q alias attr)

(* Aliases mentioned by an operand, as FROM positions. *)
let operand_aliases q = function
  | Spj.Col (alias, _) -> [ alias_position q alias ]
  | Spj.Const _ | Spj.Param _ -> []

let pred_aliases q (Spj.Eq (a, b)) = operand_aliases q a @ operand_aliases q b

let pred_holds db q ~params env (Spj.Eq (a, b)) =
  Value.equal
    (operand_value db q ~params env a)
    (operand_value db q ~params env b)

(** [run db q ~params] evaluates [q], returning the bag of projected rows
    (duplicates eliminated: views have set semantics per Section 2.3). *)
let run (db : Database.t) (q : Spj.t) ?(params = [||]) () : Tuple.t list =
  let schema = Database.schema db in
  let n = List.length q.Spj.from in
  (* Partition predicates by the highest FROM position they mention; a
     predicate becomes checkable once that alias is bound. *)
  let pred_level p =
    match pred_aliases q p with [] -> 0 | l -> List.fold_left max 0 l
  in
  let preds_at = Array.make n [] in
  List.iter
    (fun p ->
      let lvl = pred_level p in
      preds_at.(lvl) <- p :: preds_at.(lvl))
    q.Spj.where;
  (* For level i > 0, split its predicates into hash-join equalities
     (col(i) = col(<i)) and residual filters. *)
  let join_key_of_pred i (Spj.Eq (a, b)) =
    match (a, b) with
    | Spj.Col (aa, at), Spj.Col (ba, bt) ->
        let pa = alias_position q aa and pb = alias_position q ba in
        if pa = i && pb < i then Some ((aa, at), (ba, bt))
        else if pb = i && pa < i then Some ((ba, bt), (aa, at))
        else None
    | _ -> None
  in
  let results = ref [] in
  let index_cache : (string list, (Value.t list, Tuple.t list) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 4
  in
  let build_index rel cols =
    (* Memoized per (relation, cols) within a single [run]. *)
    let key =
      (Relation.schema rel).Schema.rname :: List.map string_of_int cols
    in
    match Hashtbl.find_opt index_cache key with
    | Some idx -> idx
    | None ->
        let idx = Hashtbl.create (max 16 (Relation.cardinal rel)) in
        Relation.iter
          (fun t ->
            let k = List.map (fun c -> t.(c)) cols in
            let prev = Option.value ~default:[] (Hashtbl.find_opt idx k) in
            Hashtbl.replace idx k (t :: prev))
          rel;
        Hashtbl.replace index_cache key idx;
        idx
  in
  let rec extend i (env : env) =
    if i = n then begin
      let row =
        Array.of_list
          (List.map
             (fun (_, op) -> operand_value schema q ~params env op)
             q.Spj.select)
      in
      results := row :: !results
    end
    else
      let _, rname = List.nth q.Spj.from i in
      let rel = Database.relation db rname in
      let joins, filters =
        List.partition_map
          (fun p ->
            match join_key_of_pred i p with
            | Some jk -> Either.Left jk
            | None -> Either.Right p)
          preds_at.(i)
      in
      (* Local filters on alias i that don't reference other aliases can be
         applied per candidate tuple; they are included in [filters]. *)
      let candidate_ok t =
        let env' = Array.copy env in
        env'.(i) <- t;
        List.for_all (pred_holds schema q ~params env') filters
      in
      match joins with
      | [] ->
          Relation.iter
            (fun t -> if candidate_ok t then extend_with i env t)
            rel
      | _ ->
          (* Hash join: probe key from the bound env, build key from this
             alias's columns. *)
          let build_cols =
            List.map (fun ((_, at), _) -> Schema.attr_index (Relation.schema rel) at) joins
          in
          let probe_ops = List.map (fun (_, (ba, bt)) -> Spj.Col (ba, bt)) joins in
          let index = build_index rel build_cols in
          let probe_key =
            List.map (fun op -> operand_value schema q ~params env op) probe_ops
          in
          (match Hashtbl.find_opt index probe_key with
          | None -> ()
          | Some ts ->
              List.iter (fun t -> if candidate_ok t then extend_with i env t) ts)
  and extend_with i env t =
    let env' = Array.copy env in
    env'.(i) <- t;
    extend (i + 1) env'
  in
  extend 0 (Array.make n [||]);
  (* Set semantics. *)
  let seen = Hashtbl.create (List.length !results) in
  List.filter
    (fun row ->
      let k = Array.to_list row in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    (List.rev !results)

(** {2 Bulk evaluation of parameterized queries}

    Publishing evaluates each star rule once per parent node; re-running
    [run] per parent rebuilds hash indexes and rescans relations, which is
    quadratic over a whole view. When every parameter is bound to a column
    by an equality predicate (the common shape of ATG rules, e.g.
    [p.cno1 = $0]), the query can instead be evaluated *once* with the
    parameter predicates dropped and the binding columns appended to the
    projection, then grouped by parameter value — the bulk strategy of
    schema-directed publishing middleware.

    [run_grouped db q ~nparams] returns [Some lookup] on success, where
    [lookup params] gives exactly the rows [run db q ~params] would,
    projected to the original width; [None] when some parameter has no
    column binding (callers fall back to per-call evaluation). *)
let run_grouped (db : Database.t) (q : Spj.t) ~(nparams : int) :
    (Value.t list -> Tuple.t list) option =
  let binding = Array.make nparams None in
  List.iter
    (fun (Spj.Eq (a, b)) ->
      match (a, b) with
      | Spj.Col (al, at), Spj.Param k | Spj.Param k, Spj.Col (al, at) ->
          if k < nparams && binding.(k) = None then
            binding.(k) <- Some (al, at)
      | _ -> ())
    q.Spj.where;
  if Array.exists (fun b -> b = None) binding then None
  else begin
    let col_of k =
      match binding.(k) with Some (al, at) -> Spj.Col (al, at) | None -> assert false
    in
    let subst = function Spj.Param k when k < nparams -> col_of k | op -> op in
    (* drop the binding predicates themselves; substitute elsewhere *)
    let where' =
      List.filter_map
        (fun (Spj.Eq (a, b)) ->
          match (a, b) with
          | Spj.Col (al, at), Spj.Param k | Spj.Param k, Spj.Col (al, at)
            when k < nparams && binding.(k) = Some (al, at) ->
              None
          | _ -> Some (Spj.Eq (subst a, subst b)))
        q.Spj.where
    in
    let width = List.length q.Spj.select in
    let select' =
      List.map (fun (n, op) -> (n, subst op)) q.Spj.select
      @ List.init nparams (fun k -> (Printf.sprintf "$grp%d" k, col_of k))
    in
    let q' =
      Spj.make ~name:(q.Spj.qname ^ "#bulk") ~from:q.Spj.from ~where:where'
        ~select:select'
    in
    let groups : (Value.t list, Tuple.t list) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun row ->
        let key = List.init nparams (fun k -> row.(width + k)) in
        let prefix = Array.sub row 0 width in
        let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        (* run's set semantics deduplicated (prefix, key) pairs; prefixes
           may still repeat within a group only if they differed in the
           key columns, which they cannot — so no per-group dedup needed *)
        Hashtbl.replace groups key (prefix :: prev))
      (run db q' ());
    Some
      (fun params ->
        match Hashtbl.find_opt groups params with
        | Some rows -> List.rev rows
        | None -> [])
  end
