(** SPJ query evaluation over concrete databases.

    Evaluation is split into a compile step and a run step. {!prepare}
    resolves a query against the schema once — alias positions, column
    indexes, and the per-level split of the WHERE conjunction into local
    filters, hash-join keys and residual predicates — producing a {!plan}.
    {!run_prepared} executes a plan as a left-deep pipeline: each level
    either scans its relation or probes the relation's persistent
    secondary index ({!Relation.index_on}) with a key assembled from the
    already-bound prefix plus any constant/parameter equality pins on that
    level. The join order is chosen greedily at compile time: a pinned
    alias binds first (an index probe, not a scan), then aliases joinable
    to the bound prefix. This matters for the selective queries the
    incremental engine issues constantly — a star rule pinned by its
    parent parameters ([h.h1 = $0]) or an impact query pinned by a changed
    tuple's key touches O(result) tuples instead of scanning the largest
    relation in FROM order. Hash joins keep the evaluator linear per
    joined pair, which is what lets the benchmark sweeps of Section 5 reach
    100K-tuple bases; compiling once and reusing the relation-resident
    indexes removes the per-call name resolution and index rebuilds that
    dominated repeated rule evaluation. *)

type env = Tuple.t array
(** one bound tuple per FROM position *)

exception Eval_error of string

let eval_error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

(** {2 Compilation} *)

(** compiled operand: every name resolved to positions *)
type cop =
  | C_const of Value.t
  | C_param of int
  | C_col of int * int  (** (FROM position, column index) *)

type step = {
  s_rname : string;  (** relation to bind at this level *)
  s_build_cols : int list;
      (** this alias's join-key columns; [] = no join, scan *)
  s_probe : cop list;  (** probe-key operands over the bound prefix *)
  s_filters : (cop * cop) list;
      (** residual equalities checkable once this level is bound *)
}

type plan = {
  p_qname : string;
  p_n : int;
  p_steps : step array;
  p_select : cop array;
}

let alias_position (q : Spj.t) alias =
  let rec go i = function
    | [] -> eval_error "query %s: unbound alias %s" q.Spj.qname alias
    | (a, _) :: _ when a = alias -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 q.Spj.from

(* Column position of [alias.attr] inside that alias's tuple. *)
let col_index schema (q : Spj.t) alias attr =
  let r = Schema.find_relation schema (Spj.relation_of_alias q alias) in
  Schema.attr_index r attr

(* A WHERE conjunct, classified by the original FROM positions it
   mentions. [Pin] is an equality between one alias's column and a
   constant or parameter — usable as an index-probe component the moment
   that alias binds, which is what lets a pinned alias open the pipeline
   with a point lookup instead of a scan. *)
type pred_class =
  | P_join of int * string * int * string  (** pos_a, attr_a, pos_b, attr_b *)
  | P_pin of int * string * Spj.operand  (** pos, attr, const/param *)
  | P_local of int  (** both sides on one position (or no columns) *)

let classify_pred q (Spj.Eq (a, b)) =
  match (a, b) with
  | Spj.Col (aa, at), Spj.Col (ba, bt) ->
      let pa = alias_position q aa and pb = alias_position q ba in
      if pa = pb then P_local pa else P_join (pa, at, pb, bt)
  | Spj.Col (aa, at), ((Spj.Const _ | Spj.Param _) as op)
  | ((Spj.Const _ | Spj.Param _) as op), Spj.Col (aa, at) ->
      P_pin (alias_position q aa, at, op)
  | (Spj.Const _ | Spj.Param _), (Spj.Const _ | Spj.Param _) -> P_local 0

(** [prepare db q] compiles [q] against [db]'s schema. The plan only
    refers to relations by name, so it remains valid as [db]'s contents
    change — including across snapshot/rollback — and can be evaluated
    any number of times. *)
let prepare (db : Database.t) (q : Spj.t) : plan =
  let schema = Database.schema db in
  let n = List.length q.Spj.from in
  let from = Array.of_list q.Spj.from in
  let preds = List.map (fun p -> (p, classify_pred q p)) q.Spj.where in
  (* Greedy join order over original FROM positions: prefer a position
     joinable to the already-bound prefix, pins breaking ties; the opening
     position is a pinned one when any exists. Ties fall back to FROM
     order, so pin-free queries keep their original left-deep shape. *)
  let has_pin = Array.make n false in
  List.iter
    (function _, P_pin (p, _, _) -> has_pin.(p) <- true | _ -> ())
    preds;
  let level_of = Array.make n (-1) in
  let order = Array.make n 0 in
  for l = 0 to n - 1 do
    let best = ref (-1) and best_score = ref (-1) in
    for i = 0 to n - 1 do
      if level_of.(i) < 0 then begin
        let joined =
          List.exists
            (function
              | _, P_join (pa, _, pb, _) ->
                  (pa = i && level_of.(pb) >= 0)
                  || (pb = i && level_of.(pa) >= 0)
              | _ -> false)
            preds
        in
        let score = (if joined then 2 else 0) + if has_pin.(i) then 1 else 0 in
        if score > !best_score then begin
          best := i;
          best_score := score
        end
      end
    done;
    order.(l) <- !best;
    level_of.(!best) <- l
  done;
  (* operands compile against execution levels, not FROM positions *)
  let compile_op = function
    | Spj.Const v -> C_const v
    | Spj.Param k -> C_param k
    | Spj.Col (alias, attr) ->
        C_col (level_of.(alias_position q alias), col_index schema q alias attr)
  in
  (* a predicate becomes checkable at the latest level it mentions *)
  let level_of_pred = function
    | P_join (pa, _, pb, _) -> max level_of.(pa) level_of.(pb)
    | P_pin (p, _, _) -> level_of.(p)
    | P_local p -> level_of.(p)
  in
  let steps =
    Array.init n (fun l ->
        let i = order.(l) in
        let _, rname = from.(i) in
        let rel_schema = Schema.find_relation schema rname in
        let build = ref [] and probe = ref [] and filters = ref [] in
        List.iter
          (fun (Spj.Eq (a, b), cls) ->
            if level_of_pred cls = l then
              match cls with
              | P_join (pa, at, pb, bt) when pa <> pb ->
                  (* probe this level's column with the bound side *)
                  let at, (pb, bt) =
                    if pa = i then (at, (pb, bt)) else (bt, (pa, at))
                  in
                  build := Schema.attr_index rel_schema at :: !build;
                  probe :=
                    compile_op (Spj.Col (fst from.(pb), bt)) :: !probe
              | P_pin (_, at, op) ->
                  build := Schema.attr_index rel_schema at :: !build;
                  probe := compile_op op :: !probe
              | _ -> filters := (compile_op a, compile_op b) :: !filters)
          preds;
        {
          s_rname = rname;
          s_build_cols = List.rev !build;
          s_probe = List.rev !probe;
          s_filters = List.rev !filters;
        })
  in
  {
    p_qname = q.Spj.qname;
    p_n = n;
    p_steps = steps;
    p_select =
      Array.of_list (List.map (fun (_, op) -> compile_op op) q.Spj.select);
  }

(** {2 Execution} *)

let cop_value plan ~params (env : env) = function
  | C_const v -> v
  | C_param k ->
      if k >= Array.length params then
        eval_error "query %s: missing parameter $%d" plan.p_qname k
      else params.(k)
  | C_col (p, c) -> (env.(p)).(c)

(** [run_prepared db plan ~params ()] evaluates the compiled plan,
    returning the set of projected rows (duplicates eliminated: views
    have set semantics per Section 2.3). Joins probe the relations'
    persistent secondary indexes. *)
let run_prepared (db : Database.t) (plan : plan) ?(params = [||]) () :
    Tuple.t list =
  let n = plan.p_n in
  let results = ref [] in
  (* [env] is mutated in place down the recursion: level i only reads
     positions < i of the bound prefix, so no per-candidate copies *)
  let env : env = Array.make n [||] in
  let filters_ok step =
    List.for_all
      (fun (a, b) ->
        Value.equal (cop_value plan ~params env a) (cop_value plan ~params env b))
      step.s_filters
  in
  let rec extend i =
    if i = n then
      results :=
        Array.map (fun op -> cop_value plan ~params env op) plan.p_select
        :: !results
    else begin
      let step = plan.p_steps.(i) in
      let rel = Database.relation db step.s_rname in
      let try_tuple t =
        env.(i) <- t;
        if filters_ok step then extend (i + 1)
      in
      match step.s_build_cols with
      | [] -> Relation.iter try_tuple rel
      | cols -> (
          let index = Relation.index_on rel cols in
          let probe_key =
            List.map (fun op -> cop_value plan ~params env op) step.s_probe
          in
          match Hashtbl.find_opt index probe_key with
          | None -> ()
          | Some ts -> List.iter try_tuple ts)
    end
  in
  extend 0;
  (* Set semantics. *)
  let seen = Hashtbl.create (List.length !results) in
  List.filter
    (fun row ->
      let k = Array.to_list row in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    (List.rev !results)

(** [run db q ~params] compiles and evaluates [q] in one call. Callers
    evaluating the same query repeatedly should {!prepare} once and use
    {!run_prepared}. *)
let run (db : Database.t) (q : Spj.t) ?(params = [||]) () : Tuple.t list =
  run_prepared db (prepare db q) ~params ()

(** {2 Bulk evaluation of parameterized queries}

    Publishing evaluates each star rule once per parent node; re-running
    [run] per parent rebuilds hash indexes and rescans relations, which is
    quadratic over a whole view. When every parameter is bound to a column
    by an equality predicate (the common shape of ATG rules, e.g.
    [p.cno1 = $0]), the query can instead be evaluated *once* with the
    parameter predicates dropped and the binding columns appended to the
    projection, then grouped by parameter value — the bulk strategy of
    schema-directed publishing middleware.

    [run_grouped db q ~nparams] returns [Some lookup] on success, where
    [lookup params] gives exactly the rows [run db q ~params] would,
    projected to the original width; [None] when some parameter has no
    column binding (callers fall back to per-call evaluation). *)
let run_grouped (db : Database.t) (q : Spj.t) ~(nparams : int) :
    (Value.t list -> Tuple.t list) option =
  let binding = Array.make nparams None in
  List.iter
    (fun (Spj.Eq (a, b)) ->
      match (a, b) with
      | Spj.Col (al, at), Spj.Param k | Spj.Param k, Spj.Col (al, at) ->
          if k < nparams && binding.(k) = None then
            binding.(k) <- Some (al, at)
      | _ -> ())
    q.Spj.where;
  if Array.exists (fun b -> b = None) binding then None
  else begin
    let col_of k =
      match binding.(k) with Some (al, at) -> Spj.Col (al, at) | None -> assert false
    in
    let subst = function Spj.Param k when k < nparams -> col_of k | op -> op in
    (* drop the binding predicates themselves; substitute elsewhere *)
    let where' =
      List.filter_map
        (fun (Spj.Eq (a, b)) ->
          match (a, b) with
          | Spj.Col (al, at), Spj.Param k | Spj.Param k, Spj.Col (al, at)
            when k < nparams && binding.(k) = Some (al, at) ->
              None
          | _ -> Some (Spj.Eq (subst a, subst b)))
        q.Spj.where
    in
    let width = List.length q.Spj.select in
    let select' =
      List.map (fun (n, op) -> (n, subst op)) q.Spj.select
      @ List.init nparams (fun k -> (Printf.sprintf "$grp%d" k, col_of k))
    in
    let q' =
      Spj.make ~name:(q.Spj.qname ^ "#bulk") ~from:q.Spj.from ~where:where'
        ~select:select'
    in
    let groups : (Value.t list, Tuple.t list) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun row ->
        let key = List.init nparams (fun k -> row.(width + k)) in
        let prefix = Array.sub row 0 width in
        let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        (* run's set semantics deduplicated (prefix, key) pairs; prefixes
           may still repeat within a group only if they differed in the
           key columns, which they cannot — so no per-group dedup needed *)
        Hashtbl.replace groups key (prefix :: prev))
      (run db q' ());
    Some
      (fun params ->
        match Hashtbl.find_opt groups params with
        | Some rows -> List.rev rows
        | None -> [])
  end
