(** SPJ query evaluation over concrete databases.

    Evaluation is split into a compile step and a run step. {!prepare}
    resolves a query against the schema once — alias positions, column
    indexes, and the per-level split of the WHERE conjunction into local
    filters, hash-join keys and residual predicates — producing a {!plan}.
    {!run_prepared} executes a plan as a left-deep pipeline in FROM order:
    each level either scans its relation or probes the relation's
    persistent secondary index ({!Relation.index_on}) with a key assembled
    from the already-bound prefix. Hash joins keep the evaluator linear per
    joined pair, which is what lets the benchmark sweeps of Section 5 reach
    100K-tuple bases; compiling once and reusing the relation-resident
    indexes removes the per-call name resolution and index rebuilds that
    dominated repeated rule evaluation. *)

type env = Tuple.t array
(** one bound tuple per FROM position *)

exception Eval_error of string

let eval_error fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

(** {2 Compilation} *)

(** compiled operand: every name resolved to positions *)
type cop =
  | C_const of Value.t
  | C_param of int
  | C_col of int * int  (** (FROM position, column index) *)

type step = {
  s_rname : string;  (** relation to bind at this level *)
  s_build_cols : int list;
      (** this alias's join-key columns; [] = no join, scan *)
  s_probe : cop list;  (** probe-key operands over the bound prefix *)
  s_filters : (cop * cop) list;
      (** residual equalities checkable once this level is bound *)
}

type plan = {
  p_qname : string;
  p_n : int;
  p_steps : step array;
  p_select : cop array;
}

let alias_position (q : Spj.t) alias =
  let rec go i = function
    | [] -> eval_error "query %s: unbound alias %s" q.Spj.qname alias
    | (a, _) :: _ when a = alias -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 q.Spj.from

(* Column position of [alias.attr] inside that alias's tuple. *)
let col_index schema (q : Spj.t) alias attr =
  let r = Schema.find_relation schema (Spj.relation_of_alias q alias) in
  Schema.attr_index r attr

let compile_operand schema q : Spj.operand -> cop = function
  | Spj.Const v -> C_const v
  | Spj.Param k -> C_param k
  | Spj.Col (alias, attr) ->
      C_col (alias_position q alias, col_index schema q alias attr)

(* Aliases mentioned by an operand, as FROM positions. *)
let operand_aliases q = function
  | Spj.Col (alias, _) -> [ alias_position q alias ]
  | Spj.Const _ | Spj.Param _ -> []

(** [prepare db q] compiles [q] against [db]'s schema. The plan only
    refers to relations by name, so it remains valid as [db]'s contents
    change — including across snapshot/rollback — and can be evaluated
    any number of times. *)
let prepare (db : Database.t) (q : Spj.t) : plan =
  let schema = Database.schema db in
  let n = List.length q.Spj.from in
  (* a predicate becomes checkable once the highest FROM position it
     mentions is bound *)
  let pred_level p =
    match
      (fun (Spj.Eq (a, b)) -> operand_aliases q a @ operand_aliases q b) p
    with
    | [] -> 0
    | l -> List.fold_left max 0 l
  in
  let preds_at = Array.make n [] in
  List.iter
    (fun p ->
      let lvl = pred_level p in
      preds_at.(lvl) <- p :: preds_at.(lvl))
    q.Spj.where;
  (* level i > 0: col(i) = col(<i) equalities become hash-join keys *)
  let join_key_of_pred i (Spj.Eq (a, b)) =
    match (a, b) with
    | Spj.Col (aa, at), Spj.Col (ba, bt) ->
        let pa = alias_position q aa and pb = alias_position q ba in
        if pa = i && pb < i then Some ((aa, at), (ba, bt))
        else if pb = i && pa < i then Some ((ba, bt), (aa, at))
        else None
    | _ -> None
  in
  let steps =
    Array.init n (fun i ->
        let _, rname = List.nth q.Spj.from i in
        let rel_schema = Schema.find_relation schema rname in
        let joins, filters =
          List.partition_map
            (fun p ->
              match join_key_of_pred i p with
              | Some jk -> Either.Left jk
              | None -> Either.Right p)
            preds_at.(i)
        in
        {
          s_rname = rname;
          s_build_cols =
            List.map
              (fun ((_, at), _) -> Schema.attr_index rel_schema at)
              joins;
          s_probe =
            List.map
              (fun (_, (ba, bt)) ->
                compile_operand schema q (Spj.Col (ba, bt)))
              joins;
          s_filters =
            List.map
              (fun (Spj.Eq (a, b)) ->
                (compile_operand schema q a, compile_operand schema q b))
              filters;
        })
  in
  {
    p_qname = q.Spj.qname;
    p_n = n;
    p_steps = steps;
    p_select =
      Array.of_list
        (List.map (fun (_, op) -> compile_operand schema q op) q.Spj.select);
  }

(** {2 Execution} *)

let cop_value plan ~params (env : env) = function
  | C_const v -> v
  | C_param k ->
      if k >= Array.length params then
        eval_error "query %s: missing parameter $%d" plan.p_qname k
      else params.(k)
  | C_col (p, c) -> (env.(p)).(c)

(** [run_prepared db plan ~params ()] evaluates the compiled plan,
    returning the set of projected rows (duplicates eliminated: views
    have set semantics per Section 2.3). Joins probe the relations'
    persistent secondary indexes. *)
let run_prepared (db : Database.t) (plan : plan) ?(params = [||]) () :
    Tuple.t list =
  let n = plan.p_n in
  let results = ref [] in
  (* [env] is mutated in place down the recursion: level i only reads
     positions < i of the bound prefix, so no per-candidate copies *)
  let env : env = Array.make n [||] in
  let filters_ok step =
    List.for_all
      (fun (a, b) ->
        Value.equal (cop_value plan ~params env a) (cop_value plan ~params env b))
      step.s_filters
  in
  let rec extend i =
    if i = n then
      results :=
        Array.map (fun op -> cop_value plan ~params env op) plan.p_select
        :: !results
    else begin
      let step = plan.p_steps.(i) in
      let rel = Database.relation db step.s_rname in
      let try_tuple t =
        env.(i) <- t;
        if filters_ok step then extend (i + 1)
      in
      match step.s_build_cols with
      | [] -> Relation.iter try_tuple rel
      | cols -> (
          let index = Relation.index_on rel cols in
          let probe_key =
            List.map (fun op -> cop_value plan ~params env op) step.s_probe
          in
          match Hashtbl.find_opt index probe_key with
          | None -> ()
          | Some ts -> List.iter try_tuple ts)
    end
  in
  extend 0;
  (* Set semantics. *)
  let seen = Hashtbl.create (List.length !results) in
  List.filter
    (fun row ->
      let k = Array.to_list row in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    (List.rev !results)

(** [run db q ~params] compiles and evaluates [q] in one call. Callers
    evaluating the same query repeatedly should {!prepare} once and use
    {!run_prepared}. *)
let run (db : Database.t) (q : Spj.t) ?(params = [||]) () : Tuple.t list =
  run_prepared db (prepare db q) ~params ()

(** {2 Bulk evaluation of parameterized queries}

    Publishing evaluates each star rule once per parent node; re-running
    [run] per parent rebuilds hash indexes and rescans relations, which is
    quadratic over a whole view. When every parameter is bound to a column
    by an equality predicate (the common shape of ATG rules, e.g.
    [p.cno1 = $0]), the query can instead be evaluated *once* with the
    parameter predicates dropped and the binding columns appended to the
    projection, then grouped by parameter value — the bulk strategy of
    schema-directed publishing middleware.

    [run_grouped db q ~nparams] returns [Some lookup] on success, where
    [lookup params] gives exactly the rows [run db q ~params] would,
    projected to the original width; [None] when some parameter has no
    column binding (callers fall back to per-call evaluation). *)
let run_grouped (db : Database.t) (q : Spj.t) ~(nparams : int) :
    (Value.t list -> Tuple.t list) option =
  let binding = Array.make nparams None in
  List.iter
    (fun (Spj.Eq (a, b)) ->
      match (a, b) with
      | Spj.Col (al, at), Spj.Param k | Spj.Param k, Spj.Col (al, at) ->
          if k < nparams && binding.(k) = None then
            binding.(k) <- Some (al, at)
      | _ -> ())
    q.Spj.where;
  if Array.exists (fun b -> b = None) binding then None
  else begin
    let col_of k =
      match binding.(k) with Some (al, at) -> Spj.Col (al, at) | None -> assert false
    in
    let subst = function Spj.Param k when k < nparams -> col_of k | op -> op in
    (* drop the binding predicates themselves; substitute elsewhere *)
    let where' =
      List.filter_map
        (fun (Spj.Eq (a, b)) ->
          match (a, b) with
          | Spj.Col (al, at), Spj.Param k | Spj.Param k, Spj.Col (al, at)
            when k < nparams && binding.(k) = Some (al, at) ->
              None
          | _ -> Some (Spj.Eq (subst a, subst b)))
        q.Spj.where
    in
    let width = List.length q.Spj.select in
    let select' =
      List.map (fun (n, op) -> (n, subst op)) q.Spj.select
      @ List.init nparams (fun k -> (Printf.sprintf "$grp%d" k, col_of k))
    in
    let q' =
      Spj.make ~name:(q.Spj.qname ^ "#bulk") ~from:q.Spj.from ~where:where'
        ~select:select'
    in
    let groups : (Value.t list, Tuple.t list) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun row ->
        let key = List.init nparams (fun k -> row.(width + k)) in
        let prefix = Array.sub row 0 width in
        let prev = Option.value ~default:[] (Hashtbl.find_opt groups key) in
        (* run's set semantics deduplicated (prefix, key) pairs; prefixes
           may still repeat within a group only if they differed in the
           key columns, which they cannot — so no per-group dedup needed *)
        Hashtbl.replace groups key (prefix :: prev))
      (run db q' ());
    Some
      (fun params ->
        match Hashtbl.find_opt groups params with
        | Some rows -> List.rev rows
        | None -> [])
  end
