(** Tuples: immutable-by-convention value arrays positionally matching a
    relation schema. *)

type t = Value.t array

exception Type_error of string

val check : Schema.relation -> t -> unit
(** validate arity and per-attribute types. @raise Type_error otherwise. *)

val key_of : Schema.relation -> t -> Value.t list
(** the primary-key projection, usable as a hash-table key *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_list : t -> Value.t list
val of_list : Value.t list -> t

val pp : Format.formatter -> t -> unit
