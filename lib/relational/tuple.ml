(** Tuples are immutable-by-convention value arrays positionally matching a
    relation schema. *)

type t = Value.t array

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

(** [check schema t] validates arity and per-attribute types. *)
let check (r : Schema.relation) (t : t) =
  if Array.length t <> Schema.arity r then
    type_error "relation %s expects arity %d, got %d" r.Schema.rname
      (Schema.arity r) (Array.length t);
  Array.iteri
    (fun i v ->
      let a = r.Schema.attrs.(i) in
      if not (Value.has_ty a.Schema.ty v) then
        type_error "relation %s attribute %s: expected %a, got %a"
          r.Schema.rname a.Schema.aname Value.pp_ty a.Schema.ty Value.pp v)
    t

(** [key_of schema t] projects [t] on the primary key, as a list usable as a
    hash-table key. *)
let key_of (r : Schema.relation) (t : t) : Value.t list =
  Array.to_list (Array.map (fun i -> t.(i)) r.Schema.key)

let equal (a : t) (b : t) =
  Array.length a = Array.length b
  &&
  let rec go i =
    i >= Array.length a || (Value.equal a.(i) b.(i) && go (i + 1))
  in
  go 0

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash (t : t) = Hashtbl.hash (Array.map Value.hash t)

let to_list = Array.to_list
let of_list = Array.of_list

let pp ppf (t : t) =
  Fmt.pf ppf "(%a)" (Fmt.array ~sep:(Fmt.any ", ") Value.pp) t
