(** Undo journals: O(Δ) transactional rollback for mutable structures.

    A journal holds a stack of transaction frames; while a frame is open,
    mutation entry points record inverse operations, and [abort] replays
    them newest-first to restore the state at [begin_] in O(work done)
    rather than the O(structure) a deep-copy snapshot costs. [commit]
    folds a frame into its parent (or discards it at top level), so an
    enclosing frame can still undo committed inner work. Recording is
    suppressed during replay: inverses may be implemented by calling the
    public (journaled) mutation entry points without polluting an outer
    frame with compensating entries. *)

type entry = unit -> unit

type t

exception No_transaction

val create : unit -> t

val active : t -> bool
(** is any frame open? (true also during an [abort] replay) *)

val recording : t -> bool
(** should mutation sites record inverses right now? False outside any
    frame and false during replay. Guard closure allocation with this:
    [if Journal.recording j then Journal.record j (fun () -> ...)]. *)

val depth : t -> int
(** number of open frames *)

val entry_count : t -> int
(** inverse entries in the innermost open frame (0 when none is open) *)

val record : t -> entry -> unit
(** push an inverse onto the innermost frame; no-op when no frame is open
    or a replay is in progress *)

val begin_ : t -> unit
(** open a new (possibly nested) frame *)

val commit : t -> unit
(** close the innermost frame keeping its effects; with a parent frame
    open the inverses fold into it, at top level they are discarded.
    @raise No_transaction when no frame is open *)

val abort : t -> unit
(** close the innermost frame undoing its effects, newest-first.
    @raise No_transaction when no frame is open *)
