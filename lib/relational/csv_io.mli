(** CSV import/export for relations (RFC-4180-style: quoting, [""]
    escapes, CRLF tolerated). The first line must be a header naming all
    of the relation's attributes; values parse against the attribute
    types. *)

exception Csv_error of string * int  (** message, line number *)

val load_relation : Database.t -> string -> string -> int
(** [load_relation db name csv] inserts every record; returns the count.
    @raise Csv_error on malformed input or type errors;
    @raise Relation.Key_violation on duplicate keys. *)

val load_relation_file : Database.t -> string -> string -> int

val load_dir : Database.t -> string -> (string * int) list
(** load [dir]/[relation].csv for every schema relation that has one *)

val dump_relation : Database.t -> string -> string
(** header + rows (sorted, deterministic) *)
