(** CSV import/export for relations (RFC-4180-style: quoting, [""]
    escapes, CRLF tolerated). The first line must be a header naming all
    of the relation's attributes; values parse against the attribute
    types. *)

exception Csv_error of string * int  (** message, line number *)

val load_relation : Database.t -> string -> string -> int
(** [load_relation db name csv] inserts every record; returns the count.
    @raise Csv_error on malformed input or type errors;
    @raise Relation.Key_violation on duplicate keys. *)

val load_relation_file : Database.t -> string -> string -> int

val load_dir : Database.t -> string -> (string * int) list
(** load [dir]/[relation].csv for every schema relation that has one *)

val dump_relation : Database.t -> string -> string
(** header + rows (sorted, deterministic). Fields containing commas,
    quotes or newlines are quoted with [""] escapes; empty fields are
    always quoted so a single-column empty value survives a round trip. *)

val dump_relation_file : Database.t -> string -> string -> unit
(** [dump_relation_file db name path] *)

val dump_dir : Database.t -> string -> (string * int) list
(** write [dir]/[relation].csv for {e every} schema relation, creating
    [dir] if needed — the mirror of {!load_dir}; returns per-relation
    tuple counts. [load_dir] on a fresh database of the same schema
    reconstructs the original contents exactly. *)
