(** Undo journals: O(Δ) transactional rollback for mutable structures.

    Every mutable state layer of the engine (the database and its
    relations, the DAG store, the topological order L and the
    reachability matrix M) owns a journal. While a transaction frame is
    open, each mutation entry point records an *inverse operation* — a
    closure that exactly undoes the mutation — before (or as) it applies
    the change. [abort] replays the open frame's inverses newest-first,
    restoring the structure to its state at [begin_] in time proportional
    to the work done since, not to the size of the structure; [commit]
    folds the frame into its parent (or discards it at top level).

    This replaces the deep-copy snapshots the engine used to take for
    [dry_run] and [apply_group]: a snapshot costs O(view) regardless of
    what the update touches, a journal costs O(Δ).

    Two invariants make closure-based undo exact:

    - {b LIFO replay}: inverses run newest-first, so each closure replays
      against precisely the state its mutation left behind (a closure may
      capture array objects, list heads, or saved positions and rely on
      them being current at replay time);
    - {b replay suppression}: while [abort] is replaying, [record] is a
      no-op — an inverse implemented by calling a public (journaled)
      mutation entry point does not pollute an outer frame with
      compensating entries.

    Frames nest: an inner [begin_]/[abort] pair gives a partial rollback
    (this is how {!Group_update.apply} makes ΔR groups atomic inside an
    engine transaction); an inner [commit] merges the inner inverses into
    the parent frame, preserving global newest-first order. *)

type entry = unit -> unit

type t = {
  mutable frames : entry list list;  (** open frames, innermost first;
                                         each frame newest-first *)
  mutable replaying : bool;
}

exception No_transaction

let create () = { frames = []; replaying = false }

(** Is any frame open? (True also during an [abort] replay.) *)
let active j = j.frames <> []

(** Should mutation sites record inverses right now? False outside any
    frame and false during replay — guard both the closure allocation and
    the [record] call with this. *)
let recording j = j.frames <> [] && not j.replaying

let depth j = List.length j.frames

(** Number of inverse entries in the innermost open frame. *)
let entry_count j = match j.frames with [] -> 0 | top :: _ -> List.length top

(** [record j undo] pushes [undo] onto the innermost frame; a no-op when
    no frame is open or a replay is in progress. *)
let record j (undo : entry) =
  match j.frames with
  | top :: rest when not j.replaying -> j.frames <- (undo :: top) :: rest
  | _ -> ()

let begin_ j = j.frames <- [] :: j.frames

(** [commit j] closes the innermost frame, keeping its effects. With a
    parent frame open, the inverses are folded into it (so an enclosing
    [abort] still undoes them); at top level they are discarded.
    @raise No_transaction when no frame is open. *)
let commit j =
  match j.frames with
  | [] -> raise No_transaction
  | top :: parent :: rest -> j.frames <- (top @ parent) :: rest
  | [ _ ] -> j.frames <- []

(** [abort j] closes the innermost frame, undoing its effects by running
    the recorded inverses newest-first. Recording is suppressed for the
    duration, so inverses may call journaled entry points freely.
    @raise No_transaction when no frame is open. *)
let abort j =
  match j.frames with
  | [] -> raise No_transaction
  | top :: rest ->
      j.frames <- rest;
      j.replaying <- true;
      Fun.protect
        ~finally:(fun () -> j.replaying <- false)
        (fun () -> List.iter (fun undo -> undo ()) top)
