(** A SQL-flavoured concrete syntax for SPJ queries, so ATG rules read as
    they do in the paper (Fig. 2):

    {v
    select c.cno, c.title
    from   prereq p, course c
    where  p.cno1 = $0 and p.cno2 = c.cno
    v}

    Grammar (case-insensitive keywords):

    {v
    query   ::= SELECT sel (',' sel)* FROM rel (',' rel)* [WHERE conj]
    sel     ::= operand [AS name]
    rel     ::= name [name]                      -- relation [alias]
    conj    ::= pred (AND pred)*
    pred    ::= operand '=' operand
    operand ::= name '.' name | '$' digits | literal
    literal ::= 'string' | integer | TRUE | FALSE
    v}

    Output column names default to the column's attribute name (uniquified
    with suffixes when repeated). Parameters [$k] refer to the parent
    semantic attribute's fields, as in Section 2.2. *)

exception Sql_error of string * int  (** message, input offset *)

let err fmt pos = Fmt.kstr (fun s -> raise (Sql_error (s, pos))) fmt

type token =
  | Tword of string  (** bare identifier or keyword *)
  | Tstring of string
  | Tint of int
  | Tparam of int
  | Tdot
  | Tcomma
  | Teq
  | Teof

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let tokenize (s : string) : (token * int) list =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = ',' then begin
      out := (Tcomma, pos) :: !out;
      incr i
    end
    else if c = '.' then begin
      out := (Tdot, pos) :: !out;
      incr i
    end
    else if c = '=' then begin
      out := (Teq, pos) :: !out;
      incr i
    end
    else if c = '$' then begin
      incr i;
      let start = !i in
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      if !i = start then err "expected digits after $" pos;
      out := (Tparam (int_of_string (String.sub s start (!i - start))), pos) :: !out
    end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 8 in
      let closed = ref false in
      while not !closed do
        if !i >= n then err "unterminated string literal" pos;
        if s.[!i] = '\'' then
          if !i + 1 < n && s.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      out := (Tstring (Buffer.contents buf), pos) :: !out
    end
    else if (c >= '0' && c <= '9') || c = '-' then begin
      let start = !i in
      incr i;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      let txt = String.sub s start (!i - start) in
      match int_of_string_opt txt with
      | Some v -> out := (Tint v, pos) :: !out
      | None -> err "bad integer %s" pos txt
    end
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char s.[!i] do
        incr i
      done;
      out := (Tword (String.sub s start (!i - start)), pos) :: !out
    end
    else err "unexpected character %c" pos c
  done;
  List.rev ((Teof, n) :: !out)

type state = { mutable toks : (token * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Teof
let pos st = match st.toks with (_, p) :: _ -> p | [] -> -1
let advance st = match st.toks with _ :: r -> st.toks <- r | [] -> ()

let keyword st kw =
  match peek st with
  | Tword w when String.lowercase_ascii w = kw ->
      advance st;
      true
  | _ -> false

let expect_keyword st kw =
  if not (keyword st kw) then err "expected %s" (pos st) (String.uppercase_ascii kw)

let word st =
  match peek st with
  | Tword w ->
      advance st;
      w
  | _ -> err "expected an identifier" (pos st)

let parse_operand st : Spj.operand =
  match peek st with
  | Tparam k ->
      advance st;
      Spj.Param k
  | Tstring s ->
      advance st;
      Spj.Const (Value.Str s)
  | Tint v ->
      advance st;
      Spj.Const (Value.Int v)
  | Tword w when String.lowercase_ascii w = "true" ->
      advance st;
      Spj.Const (Value.Bool true)
  | Tword w when String.lowercase_ascii w = "false" ->
      advance st;
      Spj.Const (Value.Bool false)
  | Tword _ -> (
      let a = word st in
      match peek st with
      | Tdot ->
          advance st;
          Spj.Col (a, word st)
      | _ -> err "expected '.': bare column names need an alias" (pos st))
  | _ -> err "expected an operand" (pos st)

(** [parse ~name s] parses the SQL text into an {!Spj.t}.
    @raise Sql_error on malformed input. *)
let parse ~name (s : string) : Spj.t =
  let st = { toks = tokenize s } in
  expect_keyword st "select";
  (* selections *)
  let sels = ref [] in
  let rec read_sels () =
    let op = parse_operand st in
    let out_name =
      if keyword st "as" then Some (word st)
      else
        match op with
        | Spj.Col (_, attr) -> Some attr
        | Spj.Const _ | Spj.Param _ -> None
    in
    sels := (out_name, op) :: !sels;
    if peek st = Tcomma then begin
      advance st;
      read_sels ()
    end
  in
  read_sels ();
  expect_keyword st "from";
  let from = ref [] in
  let rec read_from () =
    let rname = word st in
    let alias =
      match peek st with
      | Tword w when String.lowercase_ascii w <> "where" -> (
          advance st;
          w)
      | _ -> rname
    in
    from := (alias, rname) :: !from;
    if peek st = Tcomma then begin
      advance st;
      read_from ()
    end
  in
  read_from ();
  let where = ref [] in
  if keyword st "where" then begin
    let rec read_preds () =
      let a = parse_operand st in
      (match peek st with
      | Teq -> advance st
      | _ -> err "expected '='" (pos st));
      let b = parse_operand st in
      where := Spj.Eq (a, b) :: !where;
      if keyword st "and" then read_preds ()
    in
    read_preds ()
  end;
  (match peek st with
  | Teof -> ()
  | _ -> err "trailing input" (pos st));
  (* uniquify output names *)
  let taken = Hashtbl.create 8 in
  let uniquify base =
    let rec go i =
      let candidate = if i = 0 then base else Printf.sprintf "%s_%d" base i in
      if Hashtbl.mem taken candidate then go (i + 1)
      else begin
        Hashtbl.replace taken candidate ();
        candidate
      end
    in
    go 0
  in
  let select =
    List.map
      (fun (out_name, op) ->
        let base = match out_name with Some n -> n | None -> "col" in
        (uniquify base, op))
      (List.rev !sels)
  in
  Spj.make ~name ~from:(List.rev !from) ~where:(List.rev !where) ~select
