(** Typed atomic values stored in relations and semantic attributes.

    Three types suffice for the paper's data model: strings and integers
    for keys and payloads, and booleans as the finite-domain type whose
    unknowns the insertion heuristic of Section 4.3 encodes into SAT. *)

type ty = TInt | TStr | TBool

type t =
  | Int of int
  | Str of string
  | Bool of bool
  | Null
      (** placeholder inside tuple templates before instantiation; never
          stored in a base relation *)

val ty_of : t -> ty option
(** [ty_of v] is the type inhabited by [v]; [None] for [Null]. *)

val has_ty : ty -> t -> bool
(** [has_ty ty v] holds when [v] inhabits [ty]; [Null] inhabits none. *)

val finite_domain : ty -> t list option
(** [finite_domain ty] enumerates [ty] when finite ([TBool]); the SAT
    encoding only introduces propositional variables for such types, while
    infinite-domain unknowns are satisfied with fresh constants (the
    paper's case (b)). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val pp_ty : Format.formatter -> ty -> unit

val int : int -> t
val str : string -> t
val bool : bool -> t
