(** Select-project-join queries, the query class of ATG rules (Section 2.2)
    and of the relational views V_σ (Section 2.3).

    A query ranges over aliased base relations, restricts them with a
    conjunction of equality predicates (column = column, column = constant,
    column = parameter), and projects a list of named output columns.
    Parameters stand for the fields of the parent's semantic attribute: the
    rule Q_prereq_course($prereq) of Fig. 2 becomes a query with one
    parameter. *)

type operand =
  | Col of string * string  (** alias.attribute *)
  | Const of Value.t
  | Param of int  (** $k, k ≥ 0: field of the parent semantic attribute *)

type pred = Eq of operand * operand

type t = {
  qname : string;
  from : (string * string) list;  (** (alias, relation name), join order *)
  where : pred list;  (** conjunction *)
  select : (string * operand) list;  (** (output column name, source) *)
}

exception Query_error of string

let query_error fmt = Fmt.kstr (fun s -> raise (Query_error s)) fmt

let col alias attr = Col (alias, attr)
let const v = Const v
let param k = Param k
let eq a b = Eq (a, b)

let make ~name ~from ~where ~select =
  if from = [] then query_error "query %s: empty FROM clause" name;
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (alias, _) ->
      if Hashtbl.mem seen alias then
        query_error "query %s: duplicate alias %s" name alias;
      Hashtbl.add seen alias ())
    from;
  let out = Hashtbl.create 8 in
  List.iter
    (fun (oname, _) ->
      if Hashtbl.mem out oname then
        query_error "query %s: duplicate output column %s" name oname;
      Hashtbl.add out oname ())
    select;
  { qname = name; from; where; select }

let relation_of_alias q alias =
  match List.assoc_opt alias q.from with
  | Some r -> r
  | None -> query_error "query %s: unknown alias %s" q.qname alias

(** Static well-formedness against a database schema: aliases resolve,
    columns exist, and every equality is between operands of the same type.
    Returns the output schema as (name, type) pairs; parameter types are
    given by [param_tys]. *)
let check (db : Schema.db) ?(param_tys = [||]) q : (string * Value.ty) list =
  let ty_of_operand = function
    | Col (alias, attr) ->
        let r = Schema.find_relation db (relation_of_alias q alias) in
        let i = Schema.attr_index r attr in
        r.Schema.attrs.(i).Schema.ty
    | Const v -> (
        match Value.ty_of v with
        | Some ty -> ty
        | None -> query_error "query %s: null constant" q.qname)
    | Param k ->
        if k < 0 || k >= Array.length param_tys then
          query_error "query %s: parameter $%d out of range" q.qname k
        else param_tys.(k)
  in
  List.iter
    (fun (Eq (a, b)) ->
      let ta = ty_of_operand a and tb = ty_of_operand b in
      if ta <> tb then
        query_error "query %s: type mismatch in predicate (%a vs %a)" q.qname
          Value.pp_ty ta Value.pp_ty tb)
    q.where;
  List.map (fun (oname, op) -> (oname, ty_of_operand op)) q.select

(** {2 Key preservation (Section 4.1)}

    Q is key preserving when, for every base relation occurrence in its FROM
    clause, all primary-key attributes of that occurrence appear among Q's
    projected columns. *)

let key_positions (db : Schema.db) q :
    (string * string * string) list =
  (* (alias, relation, key attribute) triples that must be projected *)
  List.concat_map
    (fun (alias, rname) ->
      let r = Schema.find_relation db rname in
      List.map (fun k -> (alias, rname, k)) (Schema.key_names r))
    q.from

let projects q alias attr =
  List.exists
    (fun (_, op) ->
      match op with
      | Col (a, at) -> a = alias && at = attr
      | Const _ | Param _ -> false)
    q.select

let is_key_preserving (db : Schema.db) q =
  List.for_all (fun (alias, _, k) -> projects q alias k) (key_positions db q)

(** [make_key_preserving db q] extends the projection list with any missing
    key attributes, under generated names [alias__attr]. The paper notes
    (Section 4.1) that this extension does not change the expressive power
    of ATGs. *)
let make_key_preserving (db : Schema.db) q =
  let missing =
    List.filter (fun (alias, _, k) -> not (projects q alias k))
      (key_positions db q)
  in
  let extra =
    List.map (fun (alias, _, k) -> (alias ^ "__" ^ k, Col (alias, k))) missing
  in
  let rec fresh name taken =
    if List.mem_assoc name taken then fresh (name ^ "_") taken else name
  in
  let select =
    List.fold_left
      (fun acc (n, op) -> acc @ [ (fresh n acc, op) ])
      q.select extra
  in
  { q with select }

(** [output_index q name] is the position of output column [name]. *)
let output_index q name =
  let rec go i = function
    | [] -> query_error "query %s has no output column %s" q.qname name
    | (n, _) :: _ when n = name -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 q.select

(** [key_output_positions db q] gives, per FROM occurrence, the positions in
    the output row holding that occurrence's key — the data Algorithm delete
    needs to compute deletable sources Sr(Q, t) from a view tuple alone.
    @raise Query_error if [q] is not key preserving. *)
let key_output_positions (db : Schema.db) q : (string * string * int list) list
    =
  List.map
    (fun (alias, rname) ->
      let r = Schema.find_relation db rname in
      let positions =
        List.map
          (fun k ->
            let rec find i = function
              | [] ->
                  query_error "query %s is not key preserving (%s.%s missing)"
                    q.qname alias k
              | (_, Col (a, at)) :: _ when a = alias && at = k -> i
              | _ :: rest -> find (i + 1) rest
            in
            find 0 q.select)
          (Schema.key_names r)
      in
      (alias, rname, positions))
    q.from

let pp_operand ppf = function
  | Col (a, at) -> Fmt.pf ppf "%s.%s" a at
  | Const v -> Value.pp ppf v
  | Param k -> Fmt.pf ppf "$%d" k

let pp ppf q =
  Fmt.pf ppf "@[<v2>select %a@,from %a@,where %a@]"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (n, op) ->
         Fmt.pf ppf "%a as %s" pp_operand op n))
    q.select
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (a, r) -> Fmt.pf ppf "%s %s" r a))
    q.from
    (Fmt.list ~sep:(Fmt.any " and ") (fun ppf (Eq (a, b)) ->
         Fmt.pf ppf "%a = %a" pp_operand a pp_operand b))
    q.where
