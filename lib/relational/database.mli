(** Databases: named relation instances over a {!Schema.db}. Each
    database owns one undo {!Journal} shared by all its relations, giving
    O(Δ) transactional rollback ({!begin_}/{!commit}/{!abort}) without
    deep copies. *)

type t

val create : Schema.db -> t
(** empty instances for every relation of the schema *)

val schema : t -> Schema.db

val journal : t -> Journal.t
(** the shared undo journal of this database's relations *)

val begin_ : t -> unit
(** open a (possibly nested) transaction frame on all relations *)

val commit : t -> unit
(** keep the frame's effects (folding its inverses into any parent frame).
    @raise Journal.No_transaction when no frame is open *)

val abort : t -> unit
(** undo every tuple mutation since the matching {!begin_}, in O(Δ); the
    secondary-index caches are maintained through the replay, not dropped.
    @raise Journal.No_transaction when no frame is open *)

val relation : t -> string -> Relation.t
(** @raise Schema.Schema_error if the relation does not exist. *)

val insert : t -> string -> Tuple.t -> unit
val delete_key : t -> string -> Value.t list -> bool
val mem_key : t -> string -> Value.t list -> bool
val find_by_key : t -> string -> Value.t list -> Tuple.t option

val cardinal : t -> int
(** total tuples across all relations *)

val copy : t -> t
(** deep copy (used by republish-and-compare test oracles) *)

(** {2 Frozen views} *)

type view
(** an immutable image of every instance; see {!Relation.freeze} for the
    structure-sharing guarantees *)

val freeze : t -> view
(** O(keys touched since the last freeze); capture with no transaction
    frame open to get committed state *)

val view_schema : view -> Schema.db

val view_relation : view -> string -> Relation.view
(** @raise Schema.Schema_error if the relation does not exist *)

val view_cardinal : view -> int
(** total tuples across all relation views *)

val iter_relations : (string -> Relation.t -> unit) -> t -> unit

val equal : t -> t -> bool
(** extensional equality of all instances *)

val pp : Format.formatter -> t -> unit
