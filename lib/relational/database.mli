(** Databases: named relation instances over a {!Schema.db}. *)

type t

val create : Schema.db -> t
(** empty instances for every relation of the schema *)

val schema : t -> Schema.db

val relation : t -> string -> Relation.t
(** @raise Schema.Schema_error if the relation does not exist. *)

val insert : t -> string -> Tuple.t -> unit
val delete_key : t -> string -> Value.t list -> bool
val mem_key : t -> string -> Value.t list -> bool
val find_by_key : t -> string -> Value.t list -> Tuple.t option

val cardinal : t -> int
(** total tuples across all relations *)

val copy : t -> t
(** deep copy (used by republish-and-compare test oracles) *)

val iter_relations : (string -> Relation.t -> unit) -> t -> unit

val equal : t -> t -> bool
(** extensional equality of all instances *)

val pp : Format.formatter -> t -> unit
