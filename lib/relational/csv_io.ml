(** CSV import/export for relations — the practical on-ramp: bring your
    own data, publish it as a view.

    Format: RFC-4180-style — comma separator, double-quote quoting with
    [""] escapes, optional CRLF line endings. The first line must be a
    header naming the relation's attributes (any order, all present).
    Values parse against the attribute types: integers, [true]/[false]
    booleans, everything else as strings; quoted values of numeric/boolean
    columns still parse by content. *)

exception Csv_error of string * int  (** message, line number *)

let err fmt line = Fmt.kstr (fun s -> raise (Csv_error (s, line))) fmt

(* ---------- low-level record reader ---------- *)

type reader = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable quoted : bool;
      (** the last record contained at least one quoted field — what
          distinguishes a quoted empty value [""] from a blank line *)
}

let at_end r = r.pos >= String.length r.src

(* one record = list of fields; None at EOF *)
let read_record (r : reader) : string list option =
  if at_end r then None
  else begin
    r.quoted <- false;
    let fields = ref [] in
    let buf = Buffer.create 16 in
    let finish_field () =
      fields := Buffer.contents buf :: !fields;
      Buffer.clear buf
    in
    let rec field () =
      if at_end r then finish_field ()
      else
        match r.src.[r.pos] with
        | ',' ->
            r.pos <- r.pos + 1;
            finish_field ();
            field ()
        | '\r' when r.pos + 1 < String.length r.src && r.src.[r.pos + 1] = '\n'
          ->
            r.pos <- r.pos + 2;
            r.line <- r.line + 1;
            finish_field ()
        | '\n' ->
            r.pos <- r.pos + 1;
            r.line <- r.line + 1;
            finish_field ()
        | '"' when Buffer.length buf = 0 ->
            r.pos <- r.pos + 1;
            r.quoted <- true;
            quoted ()
        | c ->
            Buffer.add_char buf c;
            r.pos <- r.pos + 1;
            field ()
    and quoted () =
      if at_end r then err "unterminated quoted field" r.line
      else
        match r.src.[r.pos] with
        | '"' when r.pos + 1 < String.length r.src && r.src.[r.pos + 1] = '"'
          ->
            Buffer.add_char buf '"';
            r.pos <- r.pos + 2;
            quoted ()
        | '"' ->
            r.pos <- r.pos + 1;
            (* after the closing quote: separator, newline or EOF *)
            if at_end r then finish_field ()
            else (
              match r.src.[r.pos] with
              | ',' ->
                  r.pos <- r.pos + 1;
                  finish_field ();
                  field ()
              | '\n' ->
                  r.pos <- r.pos + 1;
                  r.line <- r.line + 1;
                  finish_field ()
              | '\r'
                when r.pos + 1 < String.length r.src
                     && r.src.[r.pos + 1] = '\n' ->
                  r.pos <- r.pos + 2;
                  r.line <- r.line + 1;
                  finish_field ()
              | c -> err "unexpected %c after closing quote" r.line c)
        | c ->
            Buffer.add_char buf c;
            if c = '\n' then r.line <- r.line + 1;
            r.pos <- r.pos + 1;
            quoted ()
    in
    field ();
    Some (List.rev !fields)
  end

(* ---------- typed loading ---------- *)

let parse_value ~line (ty : Value.ty) (s : string) : Value.t =
  match ty with
  | Value.TStr -> Value.Str s
  | Value.TInt -> (
      match int_of_string_opt (String.trim s) with
      | Some v -> Value.Int v
      | None -> err "expected an integer, got %S" line s)
  | Value.TBool -> (
      match String.lowercase_ascii (String.trim s) with
      | "true" | "1" -> Value.Bool true
      | "false" | "0" -> Value.Bool false
      | _ -> err "expected a boolean, got %S" line s)

(** [load_relation db name csv] inserts every record of [csv] (with
    header) into relation [name]. Returns the number of tuples inserted.
    @raise Csv_error on malformed input or type errors;
    @raise Relation.Key_violation on duplicate keys. *)
let load_relation (db : Database.t) (name : string) (csv : string) : int =
  let rel = Schema.find_relation (Database.schema db) name in
  let r = { src = csv; pos = 0; line = 1; quoted = false } in
  let header =
    match read_record r with
    | Some h -> h
    | None -> err "empty input" 1
  in
  let positions =
    (* column index in the record per schema attribute *)
    Array.map
      (fun (a : Schema.attribute) ->
        let rec find i = function
          | [] -> err "header is missing column %s" 1 a.Schema.aname
          | h :: _ when String.trim h = a.Schema.aname -> i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 header)
      rel.Schema.attrs
  in
  let width = List.length header in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    let line = r.line in
    match read_record r with
    | None -> continue := false
    | Some [ "" ] when at_end r && not r.quoted ->
        (* a genuinely blank last line (trailing newline) — a quoted [""]
           is a real single-column record of the empty string *)
        continue := false
    | Some record ->
        if List.length record <> width then
          err "expected %d fields, got %d" line width (List.length record);
        let arr = Array.of_list record in
        let tuple =
          Array.mapi
            (fun i pos -> parse_value ~line rel.Schema.attrs.(i).Schema.ty arr.(pos))
            positions
        in
        Database.insert db name tuple;
        incr count
  done;
  !count

let load_relation_file (db : Database.t) (name : string) (path : string) : int
    =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      load_relation db name (really_input_string ic (in_channel_length ic)))

(** [load_dir db dir] loads [dir]/[relation].csv for every relation of the
    schema that has such a file; returns (relation, tuples) counts. *)
let load_dir (db : Database.t) (dir : string) : (string * int) list =
  List.filter_map
    (fun (r : Schema.relation) ->
      let path = Filename.concat dir (r.Schema.rname ^ ".csv") in
      if Sys.file_exists path then
        Some (r.Schema.rname, load_relation_file db r.Schema.rname path)
      else None)
    (Database.schema db).Schema.relations

(* ---------- export ---------- *)

let escape_field s =
  if s = "" then "\"\""
    (* always quoted: an unquoted empty field as the whole last record is
       indistinguishable from a trailing newline *)
  else if
    String.exists
      (function '"' | ',' | '\n' | '\r' -> true | _ -> false)
      s
  then begin
    let buf = Buffer.create (String.length s + 4) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

(** [dump_relation db name] renders the relation as CSV with a header,
    rows sorted for determinism. *)
let dump_relation (db : Database.t) (name : string) : string =
  let rel = Database.relation db name in
  let schema = Relation.schema rel in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (String.concat ","
       (Array.to_list
          (Array.map (fun (a : Schema.attribute) -> a.Schema.aname) schema.Schema.attrs)));
  Buffer.add_char buf '\n';
  List.iter
    (fun t ->
      Buffer.add_string buf
        (String.concat ","
           (List.map (fun v -> escape_field (Value.to_string v)) (Array.to_list t)));
      Buffer.add_char buf '\n')
    (Relation.to_list rel);
  Buffer.contents buf

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let dump_relation_file (db : Database.t) (name : string) (path : string) : unit
    =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (dump_relation db name))

(** [dump_dir db dir] writes [dir]/[relation].csv for every relation of
    the schema (creating [dir] if needed); the mirror of {!load_dir}. *)
let dump_dir (db : Database.t) (dir : string) : (string * int) list =
  mkdir_p dir;
  List.map
    (fun (r : Schema.relation) ->
      let name = r.Schema.rname in
      dump_relation_file db name (Filename.concat dir (name ^ ".csv"));
      (name, Relation.cardinal (Database.relation db name)))
    (Database.schema db).Schema.relations
