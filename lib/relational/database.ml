(** Databases: named relation instances over a {!Schema.db}.

    Every database owns one undo {!Journal} shared by all its relations:
    while a transaction frame is open ({!begin_}), tuple mutations record
    their inverses, and {!abort} rolls the whole database back in O(Δ)
    instead of the O(database) a deep {!copy} costs. *)

type t = {
  schema : Schema.db;
  instances : (string, Relation.t) Hashtbl.t;
  journal : Journal.t;
}

let create schema =
  let instances = Hashtbl.create 8 in
  let journal = Journal.create () in
  List.iter
    (fun r ->
      let inst = Relation.create r in
      Relation.set_journal inst journal;
      Hashtbl.replace instances r.Schema.rname inst)
    schema.Schema.relations;
  { schema; instances; journal }

let schema db = db.schema
let journal db = db.journal

let begin_ db = Journal.begin_ db.journal
let commit db = Journal.commit db.journal
let abort db = Journal.abort db.journal

let relation db name =
  match Hashtbl.find_opt db.instances name with
  | Some r -> r
  | None -> Schema.schema_error "database has no relation %s" name

let insert db name t = Relation.insert (relation db name) t
let delete_key db name key = Relation.delete_key (relation db name) key

let mem_key db name key = Relation.mem_key (relation db name) key
let find_by_key db name key = Relation.find_by_key (relation db name) key

let cardinal db = Hashtbl.fold (fun _ r n -> n + Relation.cardinal r) db.instances 0

(** Deep copy, used by test oracles (e.g. comparing journal-based abort
    against an independently captured state). The copy gets its own fresh
    journal with no open frames. *)
let copy db =
  let instances = Hashtbl.create (Hashtbl.length db.instances) in
  let journal = Journal.create () in
  Hashtbl.iter
    (fun name r ->
      let c = Relation.copy r in
      Relation.set_journal c journal;
      Hashtbl.replace instances name c)
    db.instances;
  { schema = db.schema; instances; journal }

(* ---- frozen views (MVCC snapshot reads) ---- *)

type view = {
  v_schema : Schema.db;
  v_relations : (string, Relation.view) Hashtbl.t;
}

(** [freeze db] is an immutable view of every instance, costing
    O(touched keys) since the last freeze (see {!Relation.freeze}).
    Capture it with no transaction frame open to get committed state. *)
let freeze db =
  let v_relations = Hashtbl.create (Hashtbl.length db.instances) in
  Hashtbl.iter
    (fun name r -> Hashtbl.replace v_relations name (Relation.freeze r))
    db.instances;
  { v_schema = db.schema; v_relations }

let view_schema v = v.v_schema

let view_relation v name =
  match Hashtbl.find_opt v.v_relations name with
  | Some r -> r
  | None -> Schema.schema_error "database view has no relation %s" name

let view_cardinal v =
  Hashtbl.fold (fun _ r n -> n + Relation.view_cardinal r) v.v_relations 0

let iter_relations f db =
  List.iter
    (fun r -> f r.Schema.rname (relation db r.Schema.rname))
    db.schema.Schema.relations

(** [equal a b] is extensional equality of all instances (used as a test
    oracle): same relation names, and tuple-for-tuple identical contents. *)
let equal a b =
  let names db =
    List.sort compare (List.map (fun r -> r.Schema.rname) db.Schema.relations)
  in
  names a.schema = names b.schema
  && List.for_all
       (fun r ->
         let name = r.Schema.rname in
         let ra = relation a name and rb = relation b name in
         Relation.cardinal ra = Relation.cardinal rb
         && Relation.fold (fun t ok -> ok && Relation.mem rb t) ra true)
       a.schema.Schema.relations

let pp ppf db =
  iter_relations (fun _ r -> Fmt.pf ppf "%a@." Relation.pp r) db
