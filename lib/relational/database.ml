(** Databases: named relation instances over a {!Schema.db}. *)

type t = {
  schema : Schema.db;
  instances : (string, Relation.t) Hashtbl.t;
}

let create schema =
  let instances = Hashtbl.create 8 in
  List.iter
    (fun r -> Hashtbl.replace instances r.Schema.rname (Relation.create r))
    schema.Schema.relations;
  { schema; instances }

let schema db = db.schema

let relation db name =
  match Hashtbl.find_opt db.instances name with
  | Some r -> r
  | None -> Schema.schema_error "database has no relation %s" name

let insert db name t = Relation.insert (relation db name) t
let delete_key db name key = Relation.delete_key (relation db name) key

let mem_key db name key = Relation.mem_key (relation db name) key
let find_by_key db name key = Relation.find_by_key (relation db name) key

let cardinal db = Hashtbl.fold (fun _ r n -> n + Relation.cardinal r) db.instances 0

(** Deep copy, used by tests that compare "republish after ΔR" against the
    incrementally updated view. *)
let copy db =
  let instances = Hashtbl.create (Hashtbl.length db.instances) in
  Hashtbl.iter
    (fun name r -> Hashtbl.replace instances name (Relation.copy r))
    db.instances;
  { schema = db.schema; instances }

let iter_relations f db =
  List.iter
    (fun r -> f r.Schema.rname (relation db r.Schema.rname))
    db.schema.Schema.relations

(** [equal a b] is extensional equality of all instances (used as a test
    oracle): same relation names, and tuple-for-tuple identical contents. *)
let equal a b =
  let names db =
    List.sort compare (List.map (fun r -> r.Schema.rname) db.Schema.relations)
  in
  names a.schema = names b.schema
  && List.for_all
       (fun r ->
         let name = r.Schema.rname in
         let ra = relation a name and rb = relation b name in
         Relation.cardinal ra = Relation.cardinal rb
         && Relation.fold (fun t ok -> ok && Relation.mem rb t) ra true)
       a.schema.Schema.relations

let pp ppf db =
  iter_relations (fun _ r -> Fmt.pf ppf "%a@." Relation.pp r) db
