(** Relation instances: key-indexed tuple stores enforcing the primary-key
    constraint. Point lookups by key are O(1), which the deletable-source
    computation of Algorithm delete (Section 4.2) and the tuple-template
    checks of Algorithm insert (Appendix A) rely on. Secondary hash
    indexes over arbitrary column sets ({!index_on}) back the hash joins
    of compiled SPJ plans; they persist across queries and are maintained
    incrementally by {!insert}/{!delete_key}. *)

type t

exception Key_violation of string

val create : Schema.relation -> t
val schema : t -> Schema.relation
val cardinal : t -> int

val set_journal : t -> Journal.t -> unit
(** attach the undo journal {!insert}/{!delete_key} record inverse tuple
    ops into while a frame is open; a database attaches one shared
    journal to all its relations. Replaying the inverses goes through the
    same two entry points, so the secondary-index cache stays maintained
    across rollback instead of being dropped. *)

val journal : t -> Journal.t option

val find_by_key : t -> Value.t list -> Tuple.t option
val mem_key : t -> Value.t list -> bool

val mem : t -> Tuple.t -> bool
(** [mem r t] holds when exactly [t] (not merely a tuple with the same
    key) is present. *)

val insert : t -> Tuple.t -> unit
(** Re-inserting an identical tuple is a no-op.
    @raise Key_violation when a different tuple holds the key.
    @raise Tuple.Type_error on arity/type mismatch. *)

val delete_key : t -> Value.t list -> bool
(** [delete_key r key] removes the keyed tuple; returns whether one was
    removed. *)

val delete : t -> Tuple.t -> bool

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

val to_list : t -> Tuple.t list
(** all tuples, sorted — deterministic for tests *)

val copy : t -> t
(** deep copy of the rows; the secondary-index cache starts empty and
    rebuilds on demand *)

(** {2 Frozen views}

    A {!view} is an immutable image of the relation built on a
    persistent map. Successive views share all untouched structure with
    each other and with the live relation, so concurrent readers can
    keep using a view while the live relation mutates. *)

type view

val freeze : t -> view
(** [freeze r] captures the current contents in O(k · log n) where k is
    the number of keys touched since the previous freeze — tuples are
    shared, never copied. Capture with no transaction frame open to get
    committed state. *)

val view_schema : view -> Schema.relation
val view_cardinal : view -> int
val view_find : view -> Value.t list -> Tuple.t option
val view_mem_key : view -> Value.t list -> bool
val view_fold : (Tuple.t -> 'a -> 'a) -> view -> 'a -> 'a
val view_iter : (Tuple.t -> unit) -> view -> unit

val view_to_list : view -> Tuple.t list
(** all tuples of the view, sorted — deterministic for tests *)

val index_on : t -> int list -> (Value.t list, Tuple.t list) Hashtbl.t
(** [index_on r cols]: the secondary hash index over column positions
    [cols], mapping each projection to its tuples. Built by one scan on
    first request, then maintained incrementally under inserts and
    deletes. The returned table is live — treat it as read-only. *)

val drop_indexes : t -> unit
(** discard every secondary index (they rebuild on demand) — for cold
    benchmark arms and memory reclamation after bulk loads *)

val int_ceiling : t -> int
(** the largest [Value.Int] in any field of any row, 0 when none.
    Maintained as an O(1) watermark (a delete removing the maximum
    triggers one lazy rescan) — serves fresh-value allocation without a
    per-call full scan. *)

val select_eq : t -> int -> Value.t -> Tuple.t list
(** linear scan on one column; repeated lookups should use
    {!index_on} *)

val pp : Format.formatter -> t -> unit
