(** Select-project-join queries — the query class of ATG rules
    (Section 2.2) and of the relational views V_σ (Section 2.3).

    A query ranges over aliased base relations, restricts them with a
    conjunction of equality predicates, and projects named output columns.
    Parameters ([$k]) stand for fields of the parent's semantic attribute,
    as in Q_prereq_course($prereq) of Fig. 2. *)

type operand =
  | Col of string * string  (** alias.attribute *)
  | Const of Value.t
  | Param of int  (** $k: field k of the parent semantic attribute *)

type pred = Eq of operand * operand

type t = {
  qname : string;
  from : (string * string) list;  (** (alias, relation name), join order *)
  where : pred list;  (** conjunction *)
  select : (string * operand) list;  (** (output column name, source) *)
}

exception Query_error of string

val query_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Construction} *)

val col : string -> string -> operand
val const : Value.t -> operand
val param : int -> operand
val eq : operand -> operand -> pred

val make :
  name:string ->
  from:(string * string) list ->
  where:pred list ->
  select:(string * operand) list ->
  t
(** @raise Query_error on empty FROM, duplicate alias or output name. *)

val relation_of_alias : t -> string -> string

val check : Schema.db -> ?param_tys:Value.ty array -> t -> (string * Value.ty) list
(** static well-formedness: aliases resolve, columns exist, equalities are
    type-compatible. Returns the output schema.
    @raise Query_error otherwise. *)

(** {1 Key preservation (Section 4.1)}

    Q is key preserving when, for every base-relation occurrence in its
    FROM clause, all primary-key attributes of that occurrence appear
    among Q's projected columns. *)

val is_key_preserving : Schema.db -> t -> bool

val make_key_preserving : Schema.db -> t -> t
(** extend the projection with any missing key attributes (under generated
    names); the paper notes this does not change the expressive power of
    ATGs *)

val key_output_positions : Schema.db -> t -> (string * string * int list) list
(** per FROM occurrence [(alias, relation, positions)], the output-row
    positions holding that occurrence's key — what Algorithm delete reads
    deletable sources Sr(Q, t) from.
    @raise Query_error if the query is not key preserving. *)

val projects : t -> string -> string -> bool
val output_index : t -> string -> int

val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
