(** Relation instances: key-indexed tuple stores with key-constraint
    enforcement.

    The primary index maps the key projection to the full tuple, which gives
    O(1) point lookups for the deletable-source computation of Algorithm
    delete (Section 4.2) and for the tuple-template key checks of Algorithm
    insert (Appendix A).

    Secondary hash indexes over arbitrary column sets ({!index_on}) back the
    hash joins of compiled SPJ plans. An index is built on first request by
    one scan, then maintained incrementally by {!insert} / {!delete_key} —
    so it survives across queries and stays correct under the transactional
    apply/rollback of update groups, which routes through these same two
    entry points. *)

type index = (Value.t list, Tuple.t list) Hashtbl.t

(* Persistent key→tuple map backing frozen views. Value.t is a pure
   scalar variant, so structural compare is a total order on keys. *)
module Kmap = Map.Make (struct
  type t = Value.t list

  let compare = Stdlib.compare
end)

type view = { v_schema : Schema.relation; v_rows : Tuple.t Kmap.t }

type t = {
  schema : Schema.relation;
  rows : (Value.t list, Tuple.t) Hashtbl.t;
  indexes : (int list, index) Hashtbl.t;
      (** column positions (ascending-free, as requested) -> buckets *)
  mutable journal : Journal.t option;
      (** undo journal this relation records into — shared across a
          database's relations ({!Database.attach}); [None] for
          standalone relations *)
  mutable committed : Tuple.t Kmap.t;
      (** persistent image of [rows] as of the last {!freeze}, patched
          incrementally — never rebuilt from scratch *)
  dirty : (Value.t list, unit) Hashtbl.t;
      (** keys possibly changed since the last {!freeze}; a superset is
          harmless (the patch rewrites them with their current value) *)
  mutable int_max : int;
      (** watermark over every [Value.Int] field of every row (0 when
          none), kept current by insert and invalidated by a delete that
          removes the maximum — {!int_ceiling} rescans lazily *)
  mutable int_max_valid : bool;
}

exception Key_violation of string

let key_violation fmt = Fmt.kstr (fun s -> raise (Key_violation s)) fmt

let create schema =
  {
    schema;
    rows = Hashtbl.create 64;
    indexes = Hashtbl.create 4;
    journal = None;
    committed = Kmap.empty;
    dirty = Hashtbl.create 64;
    int_max = 0;
    int_max_valid = true;
  }

let set_journal r j = r.journal <- Some j
let journal r = r.journal

let schema r = r.schema
let cardinal r = Hashtbl.length r.rows

let find_by_key r key = Hashtbl.find_opt r.rows key

let mem_key r key = Hashtbl.mem r.rows key

(** [mem r t] holds when exactly [t] (not merely a tuple with the same key)
    is present. *)
let mem r t =
  match find_by_key r (Tuple.key_of r.schema t) with
  | Some t' -> Tuple.equal t t'
  | None -> false

let project cols (t : Tuple.t) = List.map (fun c -> t.(c)) cols

let tuple_int_max (t : Tuple.t) =
  Array.fold_left
    (fun m v -> match v with Value.Int i when i > m -> i | _ -> m)
    0 t

(** [int_ceiling r] is the largest [Value.Int] appearing in any field of
    any row (0 when there is none). Maintained as a watermark so callers
    that need fresh integer values outside the relation's range (the
    insertion translator's variable freshener) pay O(1) per query instead
    of a full scan. *)
let int_ceiling r =
  if not r.int_max_valid then begin
    r.int_max <- Hashtbl.fold (fun _ t m -> max m (tuple_int_max t)) r.rows 0;
    r.int_max_valid <- true
  end;
  r.int_max

let index_add idx cols t =
  let k = project cols t in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt idx k) in
  Hashtbl.replace idx k (t :: bucket)

(* removal is by physical identity: the bucket holds the same array the
   primary index holds *)
let index_remove idx cols t =
  let k = project cols t in
  match Hashtbl.find_opt idx k with
  | None -> ()
  | Some bucket -> (
      match List.filter (fun t' -> t' != t) bucket with
      | [] -> Hashtbl.remove idx k
      | bucket' -> Hashtbl.replace idx k bucket')

(** [index_on r cols] is the secondary hash index of [r] over column
    positions [cols]: projection-of-[cols] -> matching tuples. Built by one
    scan on first request, kept current by {!insert}/{!delete_key}
    afterwards. The result is live — do not mutate it. *)
let index_on r cols : index =
  match Hashtbl.find_opt r.indexes cols with
  | Some idx -> idx
  | None ->
      let idx = Hashtbl.create (max 16 (Hashtbl.length r.rows)) in
      Hashtbl.iter (fun _ t -> index_add idx cols t) r.rows;
      Hashtbl.replace r.indexes cols idx;
      idx

(* Record an inverse tuple op into the attached journal, if one is open.
   The inverses go through the public entry points below, so replaying
   them maintains the secondary indexes incrementally — rollback no
   longer needs to drop the index cache (recording is suppressed during
   replay, see {!Journal}). *)
let record r undo =
  match r.journal with
  | Some j when Journal.recording j -> Journal.record j undo
  | Some _ | None -> ()

(** [insert r t] adds [t]. Re-inserting an identical tuple is a no-op;
    inserting a different tuple under an existing key raises
    {!Key_violation}, mirroring a primary-key constraint. *)
let rec insert r t =
  Tuple.check r.schema t;
  let key = Tuple.key_of r.schema t in
  match Hashtbl.find_opt r.rows key with
  | None ->
      Hashtbl.replace r.rows key t;
      Hashtbl.replace r.dirty key ();
      Hashtbl.iter (fun cols idx -> index_add idx cols t) r.indexes;
      (if r.int_max_valid then
         let m = tuple_int_max t in
         if m > r.int_max then r.int_max <- m);
      record r (fun () -> ignore (delete_key r key))
  | Some t' when Tuple.equal t t' -> ()
  | Some _ ->
      key_violation "relation %s: key %a already bound to a different tuple"
        r.schema.Schema.rname
        (Fmt.list ~sep:(Fmt.any ",") Value.pp)
        key

(** [delete_key r key] removes the tuple with key [key] if present; returns
    whether a tuple was removed. *)
and delete_key r key =
  match Hashtbl.find_opt r.rows key with
  | None -> false
  | Some t ->
      Hashtbl.remove r.rows key;
      Hashtbl.replace r.dirty key ();
      Hashtbl.iter (fun cols idx -> index_remove idx cols t) r.indexes;
      (if r.int_max_valid && r.int_max > 0 && tuple_int_max t = r.int_max then
         r.int_max_valid <- false);
      record r (fun () -> insert r t);
      true

let delete r t = delete_key r (Tuple.key_of r.schema t)

let iter f r = Hashtbl.iter (fun _ t -> f t) r.rows
let fold f r acc = Hashtbl.fold (fun _ t acc -> f t acc) r.rows acc

let to_list r =
  let l = fold (fun t acc -> t :: acc) r [] in
  List.sort Tuple.compare l

(* the copy starts with an empty index cache (indexes hold physical tuple
   references into *this* relation and rebuild on demand in the copy) and
   no journal: a copy is an independent instance. Its committed image
   starts empty with every key dirty, so the first freeze rebuilds it. *)
let copy r =
  let rows = Hashtbl.copy r.rows in
  let dirty = Hashtbl.create (max 64 (Hashtbl.length rows)) in
  Hashtbl.iter (fun k _ -> Hashtbl.replace dirty k ()) rows;
  {
    schema = r.schema;
    rows;
    indexes = Hashtbl.create 4;
    journal = None;
    committed = Kmap.empty;
    dirty;
    int_max = 0;
    int_max_valid = false;
  }

(** [drop_indexes r] discards every secondary index (they rebuild on
    demand) — lets benchmarks measure genuinely cold probe paths and
    callers reclaim memory after a bulk load. *)
let drop_indexes r = Hashtbl.reset r.indexes

(* ---- frozen views (MVCC snapshot reads) ---- *)

(** [freeze r] is an immutable view of the current contents, produced in
    O(|dirty| · log n) by patching the previous view with the current
    value of every key touched since the last freeze. The view shares
    all untouched structure with previous views and with the live
    relation (tuples are never copied). Call it with no transaction
    frame open to capture committed state. *)
let freeze r =
  let patched =
    Hashtbl.fold
      (fun key () m ->
        match Hashtbl.find_opt r.rows key with
        | Some t -> Kmap.add key t m
        | None -> Kmap.remove key m)
      r.dirty r.committed
  in
  r.committed <- patched;
  Hashtbl.reset r.dirty;
  { v_schema = r.schema; v_rows = patched }

let view_schema v = v.v_schema
let view_cardinal v = Kmap.cardinal v.v_rows
let view_find v key = Kmap.find_opt key v.v_rows
let view_mem_key v key = Kmap.mem key v.v_rows
let view_fold f v acc = Kmap.fold (fun _ t acc -> f t acc) v.v_rows acc
let view_iter f v = Kmap.iter (fun _ t -> f t) v.v_rows

let view_to_list v =
  List.sort Tuple.compare (view_fold (fun t acc -> t :: acc) v [])

(** [select_eq r col v] scans for tuples whose attribute at position [col]
    equals [v]. Callers needing repeated lookups should use {!index_on}. *)
let select_eq r col v =
  fold (fun t acc -> if Value.equal t.(col) v then t :: acc else acc) r []

let pp ppf r =
  Fmt.pf ppf "@[<v>%a@,%a@]" Schema.pp_relation r.schema
    (Fmt.list ~sep:Fmt.cut Tuple.pp)
    (to_list r)
