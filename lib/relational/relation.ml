(** Relation instances: key-indexed tuple stores with key-constraint
    enforcement.

    The primary index maps the key projection to the full tuple, which gives
    O(1) point lookups for the deletable-source computation of Algorithm
    delete (Section 4.2) and for the tuple-template key checks of Algorithm
    insert (Appendix A). *)

type t = {
  schema : Schema.relation;
  rows : (Value.t list, Tuple.t) Hashtbl.t;
}

exception Key_violation of string

let key_violation fmt = Fmt.kstr (fun s -> raise (Key_violation s)) fmt

let create schema = { schema; rows = Hashtbl.create 64 }

let schema r = r.schema
let cardinal r = Hashtbl.length r.rows

let find_by_key r key = Hashtbl.find_opt r.rows key

let mem_key r key = Hashtbl.mem r.rows key

(** [mem r t] holds when exactly [t] (not merely a tuple with the same key)
    is present. *)
let mem r t =
  match find_by_key r (Tuple.key_of r.schema t) with
  | Some t' -> Tuple.equal t t'
  | None -> false

(** [insert r t] adds [t]. Re-inserting an identical tuple is a no-op;
    inserting a different tuple under an existing key raises
    {!Key_violation}, mirroring a primary-key constraint. *)
let insert r t =
  Tuple.check r.schema t;
  let key = Tuple.key_of r.schema t in
  match Hashtbl.find_opt r.rows key with
  | None -> Hashtbl.replace r.rows key t
  | Some t' when Tuple.equal t t' -> ()
  | Some _ ->
      key_violation "relation %s: key %a already bound to a different tuple"
        r.schema.Schema.rname
        (Fmt.list ~sep:(Fmt.any ",") Value.pp)
        key

(** [delete_key r key] removes the tuple with key [key] if present; returns
    whether a tuple was removed. *)
let delete_key r key =
  if Hashtbl.mem r.rows key then (
    Hashtbl.remove r.rows key;
    true)
  else false

let delete r t = delete_key r (Tuple.key_of r.schema t)

let iter f r = Hashtbl.iter (fun _ t -> f t) r.rows
let fold f r acc = Hashtbl.fold (fun _ t acc -> f t acc) r.rows acc

let to_list r =
  let l = fold (fun t acc -> t :: acc) r [] in
  List.sort Tuple.compare l

let copy r = { schema = r.schema; rows = Hashtbl.copy r.rows }

(** [select_eq r col v] scans for tuples whose attribute at position [col]
    equals [v]. Callers needing repeated lookups should build a hash index
    via {!Eval} instead. *)
let select_eq r col v =
  fold (fun t acc -> if Value.equal t.(col) v then t :: acc else acc) r []

let pp ppf r =
  Fmt.pf ppf "@[<v>%a@,%a@]" Schema.pp_relation r.schema
    (Fmt.list ~sep:Fmt.cut Tuple.pp)
    (to_list r)
