(** SPJ query evaluation: compile-once left-deep hash-join pipelines with
    selection pushdown, plus bulk grouped evaluation of parameterized
    rules. Joins probe the relations' persistent secondary indexes
    ({!Relation.index_on}), which survive across calls and are maintained
    incrementally under updates. *)

exception Eval_error of string

type plan
(** a query compiled against a schema: alias positions and column indexes
    resolved, WHERE split per pipeline level into join keys and residual
    filters. Plans reference relations by name only, so they stay valid as
    the database contents change (including snapshot/rollback). *)

val prepare : Database.t -> Spj.t -> plan
(** compile [q] once for repeated evaluation.
    @raise Eval_error on unbound aliases. *)

val run_prepared :
  Database.t -> plan -> ?params:Tuple.t -> unit -> Tuple.t list
(** evaluate a compiled plan; duplicates are eliminated (the edge views of
    Section 2.3 have set semantics).
    @raise Eval_error on missing parameters. *)

val run : Database.t -> Spj.t -> ?params:Tuple.t -> unit -> Tuple.t list
(** [run db q ~params ()] = [run_prepared db (prepare db q) ~params ()].
    Callers evaluating the same query repeatedly should {!prepare} once.
    @raise Eval_error on unbound aliases or missing parameters. *)

val run_grouped :
  Database.t -> Spj.t -> nparams:int -> (Value.t list -> Tuple.t list) option
(** Bulk evaluation for publishing: when every parameter is bound to a
    column by an equality predicate, evaluate the query once and group by
    parameter value, so expanding a whole view costs one pass instead of
    one evaluation per parent. [None] when some parameter has no column
    binding (callers fall back to {!run}). [lookup params] equals
    [run db q ~params ()] up to row order. *)
