(** SPJ query evaluation: left-deep hash-join pipelines with selection
    pushdown, plus bulk grouped evaluation of parameterized rules. *)

exception Eval_error of string

val run : Database.t -> Spj.t -> ?params:Tuple.t -> unit -> Tuple.t list
(** [run db q ~params ()] evaluates [q]; duplicates are eliminated (the
    edge views of Section 2.3 have set semantics).
    @raise Eval_error on unbound aliases or missing parameters. *)

val run_grouped :
  Database.t -> Spj.t -> nparams:int -> (Value.t list -> Tuple.t list) option
(** Bulk evaluation for publishing: when every parameter is bound to a
    column by an equality predicate, evaluate the query once and group by
    parameter value, so expanding a whole view costs one pass instead of
    one evaluation per parent. [None] when some parameter has no column
    binding (callers fall back to {!run}). [lookup params] equals
    [run db q ~params ()] up to row order. *)
