(** The primary's replication feed: an in-memory window over the durable
    record stream, plus the per-follower progress registry.

    One entry per committed group, numbered by commit sequence (the
    batcher's [seq] — one committed group is exactly one WAL record, so
    record counting and commit numbering coincide, see
    {!Rxv_persist.Persist.recovered_last_commit}). The window holds the
    most recent [cap] encoded payloads; followers inside it are served
    from memory, followers between the current generation's base and the
    window are served from the WAL file on disk, and followers older
    than the generation base get a checkpoint reset. Nothing beyond
    [head] — the durable watermark, advanced after each WAL sync — is
    ever served: a follower must never apply a record the primary could
    still lose. *)

type follower = {
  mutable f_after : int;  (** last commit number the follower reported *)
  mutable f_epoch : int;  (** highest epoch the follower reported *)
  mutable f_last_seen : float;
  mutable f_pulls : int;
  mutable f_resets : int;
}

type t = {
  m : Mutex.t;
  cap : int;
  mutable generation : int;
  mutable gen_base : int;  (** commit number at the generation's start *)
  mutable buf_base : int;  (** commit number of the first buffered record *)
  buf : string Queue.t;  (** encoded group payloads, oldest first *)
  mutable seq : int;  (** last appended commit number *)
  mutable head : int;  (** durable watermark: last fsynced commit *)
  mutable stopping : bool;
  followers : (string, follower) Hashtbl.t;
}

let create ?(cap = 1024) ~generation ~base ~last () =
  {
    m = Mutex.create ();
    cap = max 1 cap;
    generation;
    gen_base = base;
    buf_base = last;
    buf = Queue.create ();
    seq = last;
    head = last;
    stopping = false;
    followers = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let append t payload =
  locked t (fun () ->
      t.seq <- t.seq + 1;
      Queue.push payload t.buf;
      if Queue.length t.buf > t.cap then begin
        ignore (Queue.pop t.buf);
        t.buf_base <- t.buf_base + 1
      end)

(* checkpoint rotation: the superseded WAL (synced by the rotation
   itself) is gone from disk, so everything appended so far is durable;
   buffered records stay servable from memory even though they now
   predate the generation base *)
let rotate t ~generation ~base =
  locked t (fun () ->
      t.generation <- generation;
      t.gen_base <- base;
      t.head <- t.seq)

(* the follower-side mirror of rotation: the durable history was
   *replaced* (checkpoint install or fresh reset), so the window is
   meaningless — drop it and restart the numbering at [base] *)
let reset t ~generation ~base =
  locked t (fun () ->
      t.generation <- generation;
      t.gen_base <- base;
      Queue.clear t.buf;
      t.buf_base <- base;
      t.seq <- base;
      t.head <- base)

let durable t = locked t (fun () -> t.head <- t.seq)
let stop t = locked t (fun () -> t.stopping <- true)
let head t = locked t (fun () -> t.head)
let seq t = locked t (fun () -> t.seq)

let note t ~follower ~after ~epoch =
  match Hashtbl.find_opt t.followers follower with
  | Some f ->
      f.f_after <- after;
      if epoch > f.f_epoch then f.f_epoch <- epoch;
      f.f_last_seen <- Unix.gettimeofday ();
      f.f_pulls <- f.f_pulls + 1;
      f
  | None ->
      let f =
        { f_after = after; f_epoch = epoch;
          f_last_seen = Unix.gettimeofday (); f_pulls = 1; f_resets = 0 }
      in
      Hashtbl.replace t.followers follower f;
      f

(* slice [n] buffered records starting [skip] records into the window *)
let slice t ~skip ~n =
  let i = ref 0 and out = ref [] in
  Queue.iter
    (fun p ->
      if !i >= skip && !i < skip + n then out := p :: !out;
      incr i)
    t.buf;
  List.rev !out

let poll_interval = 0.002

let pull ?(epoch = 0) t ~follower ~after ~max:max_n ~wait_ms =
  let deadline = Unix.gettimeofday () +. (float_of_int wait_ms /. 1000.) in
  let rec attempt () =
    let verdict =
      locked t (fun () ->
          let f = note t ~follower ~after ~epoch in
          if t.stopping then `Frames (t.head, [])
          else if after < t.gen_base && after < t.buf_base then begin
            f.f_resets <- f.f_resets + 1;
            `Reset
          end
          else if after < t.buf_base then
            (* between the generation base and the memory window: serve
               from the WAL file, capped at the durable watermark *)
            if t.head > after then `Disk (min max_n (t.head - after))
            else `Wait
          else begin
            let avail = t.head - after in
            if avail <= 0 then `Wait
            else
              let n = min max_n avail in
              `Frames (t.head, slice t ~skip:(after - t.buf_base) ~n)
          end)
    in
    match verdict with
    | `Wait when wait_ms > 0 && Unix.gettimeofday () < deadline ->
        (* no timed condition wait in the stdlib threads library: a
           short-interval poll bounds added latency at ~2ms without
           holding the feed lock across the wait *)
        Thread.delay poll_interval;
        attempt ()
    | `Wait -> `Frames (locked t (fun () -> t.head), [])
    | (`Frames _ | `Reset | `Disk _) as v -> v
  in
  attempt ()

type follower_stats = {
  fs_name : string;
  fs_after : int;
  fs_epoch : int;
  fs_lag : int;
  fs_connected : bool;
  fs_pulls : int;
  fs_resets : int;
}

(* a follower long-polls at least once per [wait_ms] (default well under
   a second), so a few seconds of silence means the connection is gone *)
let connected_window = 3.0

let followers t =
  let now = Unix.gettimeofday () in
  locked t (fun () ->
      Hashtbl.fold
        (fun name f acc ->
          {
            fs_name = name;
            fs_after = f.f_after;
            fs_epoch = f.f_epoch;
            fs_lag = max 0 (t.seq - f.f_after);
            fs_connected = now -. f.f_last_seen < connected_window;
            fs_pulls = f.f_pulls;
            fs_resets = f.f_resets;
          }
          :: acc)
        t.followers []
      |> List.sort compare)
