(** Single-writer group-commit loop over a bounded job queue. *)

module Engine = Rxv_core.Engine
module Xupdate = Rxv_core.Xupdate
module Persist = Rxv_persist.Persist
module Io = Rxv_fault.Io

type outcome =
  | Committed of { seq : int; reports : int; delta_ops : int }
  | Rejected_at of int * Engine.rejection
  | Failed of string
  | Sync_failed of string
  | Session_full

type job = {
  j_ops : Xupdate.t list;
  j_policy : Engine.policy;
  j_origin : (string * int) option;
  j_m : Mutex.t;
  j_c : Condition.t;
  mutable j_result : outcome option;
}

type t = {
  engine : Engine.t;
  lock : Rwlock.t;
  metrics : Metrics.t option;
  sync : unit -> unit;
  dedup : Dedup.t option;
  origin_hook : Persist.origin option -> unit;
  on_io_error : string -> unit;
  publish : unit -> unit;
      (* fired inside the exclusive section after each batch is applied,
         while no transaction frame is open — the server's hook for
         capturing and publishing a fresh MVCC snapshot *)
  queue_cap : int;
  batch_cap : int;
  q : job Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable seq : int;
  mutable stopping : bool;
  mutable writer : Thread.t option;
}

let bump t name = match t.metrics with Some m -> Metrics.incr m name | None -> ()
let bump_n t name n =
  match t.metrics with Some m -> Metrics.add m name n | None -> ()

let fulfill job outcome =
  Mutex.lock job.j_m;
  job.j_result <- Some outcome;
  Condition.broadcast job.j_c;
  Mutex.unlock job.j_m

let await job =
  Mutex.lock job.j_m;
  while job.j_result = None do
    Condition.wait job.j_c job.j_m
  done;
  let r = Option.get job.j_result in
  Mutex.unlock job.j_m;
  r

let io_msg e fn arg = Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e)

(* apply one fresh (non-duplicate) job's group; write lock held *)
let really_apply t job =
  (* stage provenance so the WAL record carries it — it must be set
     before the apply, because the engine logs inside the commit *)
  (match job.j_origin with
  | Some (client, seq) ->
      t.origin_hook
        (Some
           { Persist.o_client = client; o_seq = seq; o_commit = t.seq + 1;
             o_reports = List.length job.j_ops })
  | None -> ());
  let outcome =
    match Engine.apply_group ~policy:job.j_policy t.engine job.j_ops with
    | Ok reports ->
        t.seq <- t.seq + 1;
        bump t "applied";
        let reports_n = List.length reports in
        let delta_ops =
          List.fold_left
            (fun acc (r : Engine.report) -> acc + List.length r.Engine.delta_r)
            0 reports
        in
        (match (job.j_origin, t.dedup) with
        | Some (client, seq), Some d ->
            if
              Dedup.record d ~client ~seq ~commit:t.seq ~reports:reports_n
                ~delta:delta_ops
            then bump t "dedup_evictions"
        | _ -> ());
        Committed { seq = t.seq; reports = reports_n; delta_ops }
    | Error (i, rej) ->
        bump t "rejected";
        Rejected_at (i, rej)
    | exception Unix.Unix_error (e, fn, arg) ->
        (* an I/O failure inside the commit (WAL append): the engine
           aborted the group, nothing was applied — retryable *)
        bump t "apply_io_errors";
        let msg = io_msg e fn arg in
        t.on_io_error msg;
        Sync_failed msg
    | exception exn ->
        bump t "apply_errors";
        Failed (Printexc.to_string exn)
  in
  (* whatever happened, never let a staged origin leak into a later,
     unrelated record (e.g. when the commit produced no WAL append) *)
  t.origin_hook None;
  outcome

(* apply one job's group atomically; called with the write lock held.

   Duplicates are resolved HERE, not in the connection handler, on
   purpose: the cached answer is fulfilled only after this batch's sync,
   and batches sync in order, so by then the original's WAL record —
   appended in this or an earlier batch — is covered by a successful
   fsync. Answering from the handler could acknowledge a commit whose
   record is still in the OS buffer. *)
let apply_job t job =
  match (job.j_origin, t.dedup) with
  | Some (client, seq), Some d -> (
      match Dedup.check d ~client ~seq with
      | `Duplicate (commit, reports, delta_ops) ->
          bump t "dedup_hits";
          Committed { seq = commit; reports; delta_ops }
      | `Stale ->
          bump t "dedup_stale";
          Failed
            (Printf.sprintf "stale request %s#%d: a newer request was already \
                             acknowledged" client seq)
      | `Fresh -> (
          (* reserve dedup-table room BEFORE applying: once the group
             commits its entry must go in, and evicting a live client's
             entry to make space would quietly break that client's
             exactly-once retries. No room → refuse, retryable. *)
          match Dedup.admit d ~client with
          | `Ok -> really_apply t job
          | `Evicted _ ->
              bump t "dedup_evictions";
              really_apply t job
          | `Full ->
              bump t "dedup_full";
              Session_full))
  | _ -> really_apply t job

(* drain up to [batch_cap] jobs; blocks while the queue is empty *)
let next_batch t =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.stopping do
    Condition.wait t.nonempty t.m
  done;
  let batch = ref [] in
  let n = ref 0 in
  while (not (Queue.is_empty t.q)) && !n < t.batch_cap do
    batch := Queue.pop t.q :: !batch;
    incr n
  done;
  Mutex.unlock t.m;
  List.rev !batch

let run_batch t batch =
  (* apply the whole batch under one exclusive section … *)
  let outcomes =
    Rwlock.with_write t.lock (fun () ->
        let outcomes = List.map (apply_job t) batch in
        (* capture the committed state before the lock drops: snapshot
           readers then always see either the previous batch whole or
           this one whole, never a prefix *)
        t.publish ();
        outcomes)
  in
  (* … then sync once, outside the lock, so readers overlap the device
     write; no job is acknowledged before its batch is on disk. A failed
     sync must not kill the writer thread — every job in the batch gets
     the retryable [Sync_failed] answer, the server degrades to
     read-only, and the loop keeps serving (a later successful sync
     restores service). *)
  match t.sync () with
  | () ->
      bump t "batches";
      bump_n t "batched_updates" (List.length batch);
      List.iter2 fulfill batch outcomes
  | exception exn ->
      bump t "sync_failures";
      let msg = "wal sync failed: " ^ Printexc.to_string exn in
      t.on_io_error msg;
      List.iter (fun j -> fulfill j (Sync_failed msg)) batch

let writer_loop t =
  let rec loop () =
    match next_batch t with
    | [] -> if not t.stopping then loop () (* spurious wakeup *)
    | batch ->
        (match Io.hit "batcher.drain" with
        | () -> run_batch t batch
        | exception Unix.Unix_error (e, fn, arg) ->
            let msg = io_msg e fn arg in
            t.on_io_error msg;
            List.iter (fun j -> fulfill j (Sync_failed msg)) batch);
        loop ()
  in
  try loop () with _ when t.stopping -> ()

let create ?(queue_cap = 128) ?(batch_cap = 64) ~lock ?metrics
    ?(sync = fun () -> ()) ?dedup ?(origin_hook = fun _ -> ())
    ?(on_io_error = fun _ -> ()) ?(publish = fun () -> ())
    ?(initial_seq = 0) engine =
  if queue_cap < 1 || batch_cap < 1 then
    invalid_arg "Batcher.create: caps must be positive";
  let t =
    {
      engine;
      lock;
      metrics;
      sync;
      dedup;
      origin_hook;
      on_io_error;
      publish;
      queue_cap;
      batch_cap;
      q = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      seq = initial_seq;
      stopping = false;
      writer = None;
    }
  in
  t.writer <- Some (Thread.create writer_loop t);
  t

let submit ?origin t ~policy ops =
  let job =
    {
      j_ops = ops;
      j_policy = policy;
      j_origin = origin;
      j_m = Mutex.create ();
      j_c = Condition.create ();
      j_result = None;
    }
  in
  Mutex.lock t.m;
  let accepted = (not t.stopping) && Queue.length t.q < t.queue_cap in
  if accepted then begin
    Queue.push job t.q;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.m;
  if accepted then `Job job
  else begin
    bump t "overloaded";
    `Overloaded
  end

let submit_wait ?origin t ~policy ops =
  match submit ?origin t ~policy ops with
  | `Overloaded -> `Overloaded
  | `Job j -> `Done (await j)

let seq t = t.seq

(* promotion: adopt the follower's applied position as the commit
   counter. The write lock guarantees no batch is mid-apply — on a
   replica being promoted the queue is empty anyway (writes were
   refused), so this is a plain counter store *)
let set_seq t seq = Rwlock.with_write t.lock (fun () -> t.seq <- seq)

let stop t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  match t.writer with
  | None -> ()
  | Some th ->
      t.writer <- None;
      Thread.join th;
      (* the writer drains whole batches before re-checking [stopping];
         anything still queued here was accepted but never applied *)
      Mutex.lock t.m;
      let leftover = List.of_seq (Queue.to_seq t.q) in
      Queue.clear t.q;
      Mutex.unlock t.m;
      List.iter (fun j -> fulfill j (Failed "server stopped")) leftover
