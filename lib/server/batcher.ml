(** Single-writer group-commit loop over a bounded job queue. *)

module Engine = Rxv_core.Engine
module Xupdate = Rxv_core.Xupdate

type outcome =
  | Committed of { seq : int; reports : int; delta_ops : int }
  | Rejected_at of int * Engine.rejection
  | Failed of string

type job = {
  j_ops : Xupdate.t list;
  j_policy : Engine.policy;
  j_m : Mutex.t;
  j_c : Condition.t;
  mutable j_result : outcome option;
}

type t = {
  engine : Engine.t;
  lock : Rwlock.t;
  metrics : Metrics.t option;
  sync : unit -> unit;
  queue_cap : int;
  batch_cap : int;
  q : job Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable seq : int;
  mutable stopping : bool;
  mutable writer : Thread.t option;
}

let bump t name = match t.metrics with Some m -> Metrics.incr m name | None -> ()
let bump_n t name n =
  match t.metrics with Some m -> Metrics.add m name n | None -> ()

let fulfill job outcome =
  Mutex.lock job.j_m;
  job.j_result <- Some outcome;
  Condition.broadcast job.j_c;
  Mutex.unlock job.j_m

let await job =
  Mutex.lock job.j_m;
  while job.j_result = None do
    Condition.wait job.j_c job.j_m
  done;
  let r = Option.get job.j_result in
  Mutex.unlock job.j_m;
  r

(* apply one job's group atomically; called with the write lock held *)
let apply_job t job =
  match Engine.apply_group ~policy:job.j_policy t.engine job.j_ops with
  | Ok reports ->
      t.seq <- t.seq + 1;
      bump t "applied";
      Committed
        {
          seq = t.seq;
          reports = List.length reports;
          delta_ops =
            List.fold_left
              (fun acc (r : Engine.report) ->
                acc + List.length r.Engine.delta_r)
              0 reports;
        }
  | Error (i, rej) ->
      bump t "rejected";
      Rejected_at (i, rej)
  | exception exn ->
      bump t "apply_errors";
      Failed (Printexc.to_string exn)

(* drain up to [batch_cap] jobs; blocks while the queue is empty *)
let next_batch t =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.stopping do
    Condition.wait t.nonempty t.m
  done;
  let batch = ref [] in
  let n = ref 0 in
  while (not (Queue.is_empty t.q)) && !n < t.batch_cap do
    batch := Queue.pop t.q :: !batch;
    incr n
  done;
  Mutex.unlock t.m;
  List.rev !batch

let writer_loop t =
  let rec loop () =
    match next_batch t with
    | [] -> if not t.stopping then loop () (* spurious wakeup *)
    | batch ->
        (* apply the whole batch under one exclusive section … *)
        let outcomes =
          Rwlock.with_write t.lock (fun () -> List.map (apply_job t) batch)
        in
        (* … then sync once, outside the lock, so readers overlap the
           device write; no job is acknowledged before its batch is on
           disk *)
        (try t.sync ()
         with exn ->
           (* a failed sync must not silently acknowledge durability *)
           let msg = "wal sync failed: " ^ Printexc.to_string exn in
           List.iter (fun j -> fulfill j (Failed msg)) batch;
           raise exn);
        bump t "batches";
        bump_n t "batched_updates" (List.length batch);
        List.iter2 fulfill batch outcomes;
        loop ()
  in
  try loop () with _ when t.stopping -> ()

let create ?(queue_cap = 128) ?(batch_cap = 64) ~lock ?metrics
    ?(sync = fun () -> ()) engine =
  if queue_cap < 1 || batch_cap < 1 then
    invalid_arg "Batcher.create: caps must be positive";
  let t =
    {
      engine;
      lock;
      metrics;
      sync;
      queue_cap;
      batch_cap;
      q = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      seq = 0;
      stopping = false;
      writer = None;
    }
  in
  t.writer <- Some (Thread.create writer_loop t);
  t

let submit t ~policy ops =
  let job =
    {
      j_ops = ops;
      j_policy = policy;
      j_m = Mutex.create ();
      j_c = Condition.create ();
      j_result = None;
    }
  in
  Mutex.lock t.m;
  let accepted = (not t.stopping) && Queue.length t.q < t.queue_cap in
  if accepted then begin
    Queue.push job t.q;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.m;
  if accepted then `Job job
  else begin
    bump t "overloaded";
    `Overloaded
  end

let submit_wait t ~policy ops =
  match submit t ~policy ops with
  | `Overloaded -> `Overloaded
  | `Job j -> `Done (await j)

let seq t = t.seq

let stop t =
  Mutex.lock t.m;
  t.stopping <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  match t.writer with
  | None -> ()
  | Some th ->
      t.writer <- None;
      Thread.join th;
      (* the writer drains whole batches before re-checking [stopping];
         anything still queued here was accepted but never applied *)
      Mutex.lock t.m;
      let leftover = List.of_seq (Queue.to_seq t.q) in
      Queue.clear t.q;
      Mutex.unlock t.m;
      List.iter (fun j -> fulfill j (Failed "server stopped")) leftover
