(** The retrying client: exactly-once updates over an unreliable
    connection.

    A {!Resilient.t} owns a stable client identity and a monotonically
    increasing request sequence. {!update} assigns its sequence number
    {e once}, then re-sends the identical [(client_id, req_seq)] across
    timeouts, resets, [Overloaded] backpressure, and [Unavailable]
    degraded-mode answers — reconnecting as needed with capped,
    jittered exponential backoff. Because the server deduplicates on
    that pair (and persists the table in the WAL), an update the client
    saw acknowledged was applied exactly once, and a retry of an
    already-committed update returns the {e original} commit numbers
    even across a server crash and recovery.

    [Applied], [Rejected], and in-protocol [Error] answers are
    definitive and end the retry loop. *)

type target = Unix_path of string | Tcp of string * int

type t

val create :
  ?client_id:string ->
  ?timeout:float ->
  ?max_attempts:int ->
  ?seed:int ->
  target ->
  t
(** [timeout] (default 5 s; [<= 0.] disables) is the per-request receive
    timeout — a reply slower than this triggers reconnect-and-retry.
    [max_attempts] (default 12) bounds attempts per request. [seed]
    makes the backoff jitter reproducible. Connection is lazy: the
    first request connects. *)

val client_id : t -> string

val update :
  ?policy:Proto.policy ->
  t ->
  Proto.op list ->
  [ `Applied of int * int
  | `Rejected of int * string
  | `Error of string ]
(** submit one atomic group with at-most-[max_attempts] exactly-once
    delivery; [`Error] covers both definitive server errors and retry
    exhaustion *)

val query : t -> string -> (int * (string * int) list, string) result
val stats : t -> (Proto.server_stats, string) result

val reconnects : t -> int
(** connections established over this client's lifetime *)

val retries : t -> int
(** request attempts beyond the first, across all requests *)

val close : t -> unit
