(** The retrying client: exactly-once updates over an unreliable
    connection.

    A {!Resilient.t} owns a stable client identity and a monotonically
    increasing request sequence. {!update} assigns its sequence number
    {e once}, then re-sends the identical [(client_id, req_seq)] across
    timeouts, resets, [Overloaded] backpressure, and [Unavailable]
    degraded-mode answers — reconnecting as needed with capped,
    jittered exponential backoff. Because the server deduplicates on
    that pair (and persists the table in the WAL), an update the client
    saw acknowledged was applied exactly once, and a retry of an
    already-committed update returns the {e original} commit numbers
    even across a server crash and recovery.

    [Applied], [Rejected], and in-protocol [Error] answers are
    definitive and end the retry loop. *)

type target = Unix_path of string | Tcp of string * int

type t

val create :
  ?client_id:string ->
  ?timeout:float ->
  ?max_attempts:int ->
  ?connect_retries:int ->
  ?seed:int ->
  target ->
  t
(** [timeout] (default 5 s; [<= 0.] disables) is the per-request receive
    timeout — a reply slower than this triggers reconnect-and-retry.
    [max_attempts] (default 12) bounds attempts per request.
    [connect_retries] (default 60, ≈5 s of backoff) bounds each
    reconnect's attempts — the {!Router} uses a small value so a dead
    candidate costs milliseconds, not seconds. [seed] makes the backoff
    jitter reproducible. Connection is lazy: the first request
    connects. *)

val client_id : t -> string

val update :
  ?policy:Proto.policy ->
  t ->
  Proto.op list ->
  [ `Applied of int * int
  | `Rejected of int * string
  | `Error of string ]
(** submit one atomic group with at-most-[max_attempts] exactly-once
    delivery; [`Error] covers both definitive server errors and retry
    exhaustion (including a [Fenced] refusal — use the {!Router} to
    follow the new primary instead) *)

val update_as :
  ?policy:Proto.policy ->
  ?epoch:int ->
  req_seq:int ->
  t ->
  Proto.op list ->
  [ `Applied of int * int
  | `Rejected of int * string
  | `Fenced of int * string
  | `Error of string ]
(** like {!update} with a {e caller-owned} sequence number and epoch
    stamp: the {!Router} re-sends an in-flight write to successive
    candidates after a failover under the same [(client_id, req_seq)],
    so whichever primary committed it first, the dedup table answers
    every other attempt — exactly-once across promotion. [`Fenced
    (epoch, leader_hint)] is definitive {e for this node}. *)

val query : t -> string -> (int * (string * int) list, string) result
val stats : t -> (Proto.server_stats, string) result

val query_at :
  t -> min_seq:int -> wait_ms:int -> string ->
  ( int * (string * int) list,
    [ `Behind of string | `Err of string ] ) result
(** like {!Client.query_at} with reconnect-and-retry for transport
    failures only; [`Behind] (the server cannot cover commit [min_seq]
    within [wait_ms]) is definitive for this server and is NOT retried
    here — redirect to another replica or the primary (see {!Router}) *)

(** Topology-aware routing: writes to the primary, reads fanned across
    read-only replicas with bounded staleness.

    The router keeps a {e pin} — the highest commit number any of its
    own updates was acknowledged at — and asks every routed read to
    cover it ({!Client.query_at}), so a client always reads its own
    writes. A replica that cannot catch up within [wait_ms] answers
    [`Behind] and the read moves on round-robin, falling back to the
    primary (whose published snapshot always covers its own commits). *)
module Router : sig
  type t

  val create :
    ?client_id:string ->
    ?timeout:float ->
    ?max_attempts:int ->
    ?seed:int ->
    ?wait_ms:int ->
    ?failover_timeout:float ->
    primary:target ->
    target list ->
    t
  (** [create ~primary replicas]. Every node is a {e candidate}: any of
      them may be promoted, and the router follows. All underlying
      connections share one client identity (so exactly-once state is
      portable across candidates); [max_attempts] defaults to 2 here —
      the failover sweep, not per-connection retry, is the policy.
      [wait_ms] (default 200) is how long a lagging replica may block
      catching up to the pin before a read is redirected.
      [failover_timeout] (default 10 s) bounds one write's search for a
      writable primary. *)

  val update :
    ?policy:Proto.policy ->
    t ->
    Proto.op list ->
    [ `Applied of int * int
    | `Rejected of int * string
    | `Error of string ]
  (** exactly-once to the current primary, {e surviving failover}: on a
      [Fenced] refusal or transport death the same [(client_id,
      req_seq)] is re-sent around the candidate ring (following the
      refusal's leader hint when it names a known candidate) until a
      node accepts the write or [failover_timeout] passes. A fenced
      reply carrying a newer epoch is adopted and stamped onto every
      subsequent write, so the deposed primary can never acknowledge
      one. On [`Applied] advances the pin. *)

  val query : t -> string -> (int * (string * int) list, string) result
  (** round-robin across live non-primary candidates at the current pin,
      primary fallback. A candidate that fails at the transport level is
      marked dead and skipped; dead candidates are re-probed on a
      doubling backoff (50 ms → 2 s) and rejoin the rotation on the
      first success. *)

  val pin : t -> int
  (** the commit number every routed read is guaranteed to cover *)

  val reads_replica : t -> int
  val reads_primary : t -> int

  val redirects : t -> int
  (** reads where every replica was behind/unreachable and the primary
      answered *)

  val failovers : t -> int
  (** times the router switched which candidate it treats as primary *)

  val epoch_seen : t -> int
  (** highest cluster epoch witnessed (via [Fenced] refusals and
      post-failover stats probes) — stamped onto every write *)

  val primary_index : t -> int
  (** index (into [primary :: replicas]) of the current believed primary *)

  val dead_replicas : t -> int
  (** candidates currently marked dead on the read path (excluding the
      one treated as primary) *)

  val close : t -> unit
end

val reconnects : t -> int
(** connections established over this client's lifetime *)

val retries : t -> int
(** request attempts beyond the first, across all requests *)

val close : t -> unit
