(** The retrying client: exactly-once updates over an unreliable
    connection.

    A {!Resilient.t} owns a stable client identity and a monotonically
    increasing request sequence. {!update} assigns its sequence number
    {e once}, then re-sends the identical [(client_id, req_seq)] across
    timeouts, resets, [Overloaded] backpressure, and [Unavailable]
    degraded-mode answers — reconnecting as needed with capped,
    jittered exponential backoff. Because the server deduplicates on
    that pair (and persists the table in the WAL), an update the client
    saw acknowledged was applied exactly once, and a retry of an
    already-committed update returns the {e original} commit numbers
    even across a server crash and recovery.

    [Applied], [Rejected], and in-protocol [Error] answers are
    definitive and end the retry loop. *)

type target = Unix_path of string | Tcp of string * int

type t

val create :
  ?client_id:string ->
  ?timeout:float ->
  ?max_attempts:int ->
  ?seed:int ->
  target ->
  t
(** [timeout] (default 5 s; [<= 0.] disables) is the per-request receive
    timeout — a reply slower than this triggers reconnect-and-retry.
    [max_attempts] (default 12) bounds attempts per request. [seed]
    makes the backoff jitter reproducible. Connection is lazy: the
    first request connects. *)

val client_id : t -> string

val update :
  ?policy:Proto.policy ->
  t ->
  Proto.op list ->
  [ `Applied of int * int
  | `Rejected of int * string
  | `Error of string ]
(** submit one atomic group with at-most-[max_attempts] exactly-once
    delivery; [`Error] covers both definitive server errors and retry
    exhaustion *)

val query : t -> string -> (int * (string * int) list, string) result
val stats : t -> (Proto.server_stats, string) result

val query_at :
  t -> min_seq:int -> wait_ms:int -> string ->
  ( int * (string * int) list,
    [ `Behind of string | `Err of string ] ) result
(** like {!Client.query_at} with reconnect-and-retry for transport
    failures only; [`Behind] (the server cannot cover commit [min_seq]
    within [wait_ms]) is definitive for this server and is NOT retried
    here — redirect to another replica or the primary (see {!Router}) *)

(** Topology-aware routing: writes to the primary, reads fanned across
    read-only replicas with bounded staleness.

    The router keeps a {e pin} — the highest commit number any of its
    own updates was acknowledged at — and asks every routed read to
    cover it ({!Client.query_at}), so a client always reads its own
    writes. A replica that cannot catch up within [wait_ms] answers
    [`Behind] and the read moves on round-robin, falling back to the
    primary (whose published snapshot always covers its own commits). *)
module Router : sig
  type t

  val create :
    ?client_id:string ->
    ?timeout:float ->
    ?max_attempts:int ->
    ?seed:int ->
    ?wait_ms:int ->
    primary:target ->
    target list ->
    t
  (** [create ~primary replicas]. [wait_ms] (default 200) is how long a
      lagging replica may block catching up to the pin before the read
      is redirected. Other options as {!create}, applied to every
      underlying connection. *)

  val update :
    ?policy:Proto.policy ->
    t ->
    Proto.op list ->
    [ `Applied of int * int
    | `Rejected of int * string
    | `Error of string ]
  (** exactly-once to the primary; on [`Applied] advances the pin *)

  val query : t -> string -> (int * (string * int) list, string) result
  (** round-robin across replicas at the current pin, primary fallback *)

  val pin : t -> int
  (** the commit number every routed read is guaranteed to cover *)

  val reads_replica : t -> int
  val reads_primary : t -> int

  val redirects : t -> int
  (** reads where every replica was behind/unreachable and the primary
      answered *)

  val close : t -> unit
end

val reconnects : t -> int
(** connections established over this client's lifetime *)

val retries : t -> int
(** request attempts beyond the first, across all requests *)

val close : t -> unit
