(** The single-writer group-commit loop.

    Update requests from any number of connection threads are enqueued
    as jobs on a bounded queue. One dedicated writer thread drains up to
    [batch_cap] jobs at a time, applies each as an atomic group through
    [Engine.apply_group] under the exclusive side of the {!Rwlock}, then
    releases the lock and pays {e one} WAL sync for the whole drained
    batch before acknowledging any of its jobs — the classic group
    commit: the fsync (the dominant cost under [Sync_always]) is
    amortized over every commit in the batch, and readers run while the
    device write is in flight.

    Backpressure is the queue bound: {!submit} never blocks the
    connection thread on a full queue — it reports [`Overloaded]
    immediately, which the server turns into the protocol's
    [Overloaded] reply. *)

module Engine = Rxv_core.Engine
module Xupdate = Rxv_core.Xupdate

type outcome =
  | Committed of { seq : int; reports : int; delta_ops : int }
      (** the group committed as the [seq]-th write in the server's
          serialization order, and — when a sync hook is installed — is
          durable *)
  | Rejected_at of int * Engine.rejection
      (** op [index] rejected; the engine rolled back the whole group *)
  | Failed of string  (** unexpected exception during apply *)

type job

type t

val create :
  ?queue_cap:int ->
  ?batch_cap:int ->
  lock:Rwlock.t ->
  ?metrics:Metrics.t ->
  ?sync:(unit -> unit) ->
  Engine.t ->
  t
(** start the writer thread. [queue_cap] (default 128) bounds pending
    jobs; [batch_cap] (default 64) bounds how many commits share one
    sync; [sync] (default no-op) is called once per drained batch —
    typically [Rxv_persist.Persist.sync] with the engine's WAL hook
    attached in [deferred_sync] mode. *)

val submit :
  t -> policy:Engine.policy -> Xupdate.t list -> [ `Job of job | `Overloaded ]
(** enqueue one atomic update group; [`Overloaded] when the queue is
    full or the batcher is stopping *)

val await : job -> outcome
(** block until the job's batch is applied and synced *)

val submit_wait :
  t -> policy:Engine.policy -> Xupdate.t list -> [ `Done of outcome | `Overloaded ]

val seq : t -> int
(** committed groups so far *)

val stop : t -> unit
(** drain every accepted job, sync, and join the writer thread;
    idempotent. Jobs submitted after [stop] begins are [`Overloaded]. *)
