(** The single-writer group-commit loop.

    Update requests from any number of connection threads are enqueued
    as jobs on a bounded queue. One dedicated writer thread drains up to
    [batch_cap] jobs at a time, applies each as an atomic group through
    [Engine.apply_group] under the exclusive side of the {!Rwlock}, then
    releases the lock and pays {e one} WAL sync for the whole drained
    batch before acknowledging any of its jobs — the classic group
    commit: the fsync (the dominant cost under [Sync_always]) is
    amortized over every commit in the batch, and readers run while the
    device write is in flight.

    Backpressure is the queue bound: {!submit} never blocks the
    connection thread on a full queue — it reports [`Overloaded]
    immediately, which the server turns into the protocol's
    [Overloaded] reply.

    The batcher is also where exactly-once retries are resolved. A job
    carrying an [origin] (client id, request seq) is checked against the
    {!Dedup} table {e inside} the writer loop: a duplicate is answered
    from the table — after its batch's sync, so the cached answer is
    never delivered while the original record could still be sitting in
    an OS buffer — and a fresh request has its origin staged into the
    WAL record of its own commit. Durability failures (a failed batch
    sync, or an I/O error during the commit's WAL append) do not kill
    the writer: the affected jobs get the retryable {!Sync_failed}
    answer, [on_io_error] fires (the server uses it to degrade to
    read-only mode), and the loop keeps running. *)

module Engine = Rxv_core.Engine
module Xupdate = Rxv_core.Xupdate
module Persist = Rxv_persist.Persist

type outcome =
  | Committed of { seq : int; reports : int; delta_ops : int }
      (** the group committed as the [seq]-th write in the server's
          serialization order, and — when a sync hook is installed — is
          durable. Duplicates of an already-committed request get the
          original's numbers. *)
  | Rejected_at of int * Engine.rejection
      (** op [index] rejected; the engine rolled back the whole group *)
  | Failed of string  (** definitive failure (bug, stale request, stop) *)
  | Sync_failed of string
      (** durability could not be guaranteed; nothing was acknowledged
          and the request is safe to retry with the same origin *)
  | Session_full
      (** the dedup table is at capacity with no evictable (aged-out)
          entry, so a new client session cannot be admitted without
          breaking another client's exactly-once guarantee; nothing was
          applied — retry later with the same origin *)

type job

type t

val create :
  ?queue_cap:int ->
  ?batch_cap:int ->
  lock:Rwlock.t ->
  ?metrics:Metrics.t ->
  ?sync:(unit -> unit) ->
  ?dedup:Dedup.t ->
  ?origin_hook:(Persist.origin option -> unit) ->
  ?on_io_error:(string -> unit) ->
  ?publish:(unit -> unit) ->
  ?initial_seq:int ->
  Engine.t ->
  t
(** start the writer thread. [queue_cap] (default 128) bounds pending
    jobs; [batch_cap] (default 64) bounds how many commits share one
    sync; [sync] (default no-op) is called once per drained batch —
    typically [Rxv_persist.Persist.sync] with the engine's WAL hook
    attached in [deferred_sync] mode. [dedup] enables exactly-once
    handling of jobs that carry an origin; [origin_hook] (typically
    [Persist.set_origin]) stages each fresh job's provenance for its WAL
    record; [on_io_error] fires on any durability failure; [publish]
    (default no-op) fires at the end of each batch's exclusive section,
    with every group committed or rolled back and no frame open — the
    server hooks [Engine.Snapshot.capture] here to publish a fresh MVCC
    read view per batch; [initial_seq] seeds the commit counter
    (recovery passes the last recovered commit number so the sequence
    continues across restarts — dedup entries reference these
    numbers). *)

val submit :
  ?origin:string * int ->
  t ->
  policy:Engine.policy ->
  Xupdate.t list ->
  [ `Job of job | `Overloaded ]
(** enqueue one atomic update group; [`Overloaded] when the queue is
    full or the batcher is stopping. [origin = (client, req_seq)] opts
    the job into exactly-once dedup. *)

val await : job -> outcome
(** block until the job's batch is applied and synced *)

val submit_wait :
  ?origin:string * int ->
  t ->
  policy:Engine.policy ->
  Xupdate.t list ->
  [ `Done of outcome | `Overloaded ]

val seq : t -> int
(** commit number of the latest committed group *)

val set_seq : t -> int -> unit
(** reseed the commit counter (under the exclusive lock, so never while
    a batch is mid-apply) — the promotion path adopts the follower
    loop's applied position so the new primary's first commit continues
    the replicated numbering *)

val stop : t -> unit
(** drain every accepted job, sync, and join the writer thread;
    idempotent. Jobs submitted after [stop] begins are [`Overloaded]. *)
