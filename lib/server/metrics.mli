(** Service metrics: named monotonic counters and log-scale latency
    histograms, cheap enough to update on every request.

    A histogram has one bucket per power-of-two microsecond band
    ([\[2{^i}, 2{^i+1})] µs), so recording is a few bit operations under
    a single mutex, memory is constant, and quantiles are read by a
    cumulative walk — the classic group-commit observability trade:
    p50/p95/p99 with bounded error (one octave) at negligible hot-path
    cost. *)

type t

val create : unit -> t

(** {2 Counters} *)

val incr : t -> string -> unit
(** add 1 to the named counter (created on first use) *)

val add : t -> string -> int -> unit

val counter : t -> string -> int
(** current value; 0 for a counter never touched *)

(** {2 Gauges}

    Last-write-wins instantaneous values — replication lag, per-follower
    connection state — kept apart from the monotonic counters so
    repeated sets are idempotent and stale entries can be removed. *)

val set_gauge : t -> string -> int -> unit
val clear_gauge : t -> string -> unit

val gauge : t -> string -> int option
(** current value; [None] for a gauge never set (or cleared) *)

(** {2 Latency histograms} *)

val record : t -> string -> float -> unit
(** [record t kind seconds]: add one observation to [kind]'s histogram *)

type summary = {
  s_kind : string;
  s_count : int;
  s_p50_us : int;
  s_p95_us : int;
  s_p99_us : int;
  s_max_us : int;
  s_mean_us : int;
}
(** quantiles in microseconds; each quantile reports the upper bound of
    the bucket holding it *)

val pp_summary : Format.formatter -> summary -> unit

(** {2 Snapshot} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;  (** sorted by name *)
  latencies : summary list;  (** sorted by kind *)
}

val snapshot : t -> snapshot
(** a consistent copy taken under the lock *)
