(** Wire protocol: Codec-encoded payloads inside Frame records. *)

module Value = Rxv_relational.Value
module Codec = Rxv_persist.Codec
module Frame = Rxv_persist.Frame

type policy = [ `Abort | `Proceed ]

type op =
  | Delete of string
  | Insert of { etype : string; attr : Value.t array; path : string }

type request =
  | Ping
  | Query of string
  | Update of {
      client : string;
      req_seq : int;
      epoch : int;
      policy : policy;
      ops : op list;
    }
  | Stats
  | Checkpoint
  | Shutdown
  | Repl_hello of { follower : string; after : int; epoch : int }
  | Repl_pull of {
      follower : string;
      after : int;
      max : int;
      wait_ms : int;
      epoch : int;
    }
  | Query_at of { path : string; min_seq : int; wait_ms : int }
  | Promote

type server_stats = {
  st_nodes : int;
  st_edges : int;
  st_m_size : int;
  st_l_size : int;
  st_occurrences : int;
  st_generation : int;
  st_wal_records : int option;
  st_health : string;
  st_counters : (string * int) list;
  st_gauges : (string * int) list;
  st_latencies : Metrics.summary list;
}

type response =
  | Pong
  | Selected of { count : int; nodes : (string * int) list }
  | Applied of { seq : int; reports : int; delta_ops : int }
  | Rejected of { index : int; reason : string }
  | Overloaded
  | Stats_reply of server_stats
  | Checkpointed of { generation : int; bytes : int }
  | Bye
  | Error of string
  | Unavailable of string
  | Repl_frames of {
      after : int;
      head : int;
      records : string list;
      epoch : int;
      boundary : int option;
    }
  | Repl_reset of {
      generation : int;
      base : int;
      ckpt : string option;
      epoch : int;
      sessions : string option;
    }
  | Fenced of { epoch : int; leader : string }
  | Promoted of { epoch : int; seq : int }

let pp_op ppf = function
  | Delete p -> Fmt.pf ppf "delete %s" p
  | Insert { etype; attr; path } ->
      Fmt.pf ppf "insert (%s,%d attrs) into %s" etype (Array.length attr) path

let pp_request ppf = function
  | Ping -> Fmt.string ppf "ping"
  | Query p -> Fmt.pf ppf "query %s" p
  | Update { client; req_seq; epoch; policy; ops } ->
      Fmt.pf ppf "update[%s]%a%a {%a}"
        (match policy with `Abort -> "abort" | `Proceed -> "proceed")
        (fun ppf () ->
          if client <> "" then Fmt.pf ppf " %s#%d" client req_seq)
        ()
        (fun ppf () -> if epoch > 0 then Fmt.pf ppf " e%d" epoch)
        ()
        (Fmt.list ~sep:Fmt.semi pp_op) ops
  | Stats -> Fmt.string ppf "stats"
  | Checkpoint -> Fmt.string ppf "checkpoint"
  | Shutdown -> Fmt.string ppf "shutdown"
  | Repl_hello { follower; after; epoch } ->
      Fmt.pf ppf "repl-hello %s after=%d e%d" follower after epoch
  | Repl_pull { follower; after; max; wait_ms; epoch } ->
      Fmt.pf ppf "repl-pull %s after=%d max=%d wait=%dms e%d" follower after
        max wait_ms epoch
  | Query_at { path; min_seq; wait_ms } ->
      Fmt.pf ppf "query@%d %s (wait=%dms)" min_seq path wait_ms
  | Promote -> Fmt.string ppf "promote"

let pp_response ppf = function
  | Pong -> Fmt.string ppf "pong"
  | Selected { count; nodes } ->
      Fmt.pf ppf "selected %d (%d listed)" count (List.length nodes)
  | Applied { seq; reports; delta_ops } ->
      Fmt.pf ppf "applied seq=%d reports=%d delta_ops=%d" seq reports delta_ops
  | Rejected { index; reason } -> Fmt.pf ppf "rejected op %d: %s" index reason
  | Overloaded -> Fmt.string ppf "overloaded"
  | Stats_reply st ->
      Fmt.pf ppf "stats nodes=%d edges=%d" st.st_nodes st.st_edges
  | Checkpointed { generation; bytes } ->
      Fmt.pf ppf "checkpointed gen=%d (%d bytes)" generation bytes
  | Bye -> Fmt.string ppf "bye"
  | Error m -> Fmt.pf ppf "error: %s" m
  | Unavailable m -> Fmt.pf ppf "unavailable: %s" m
  | Repl_frames { after; head; records; epoch; boundary } ->
      Fmt.pf ppf "repl-frames after=%d head=%d e%d%a (%d records)" after head
        epoch
        (fun ppf -> function
          | Some b -> Fmt.pf ppf " boundary=%d" b
          | None -> ())
        boundary (List.length records)
  | Repl_reset { generation; base; ckpt; epoch; _ } ->
      Fmt.pf ppf "repl-reset gen=%d base=%d e%d (%s)" generation base epoch
        (match ckpt with
        | Some c -> Printf.sprintf "%d-byte checkpoint" (String.length c)
        | None -> "fresh init")
  | Fenced { epoch; leader } ->
      Fmt.pf ppf "fenced: epoch %d%s" epoch
        (if leader = "" then "" else " (leader " ^ leader ^ ")")
  | Promoted { epoch; seq } ->
      Fmt.pf ppf "promoted: epoch %d at commit %d" epoch seq

(* ---- payload codec ---- *)

let enc_policy b = function
  | `Abort -> Codec.u8 b 0
  | `Proceed -> Codec.u8 b 1

let dec_policy c : policy =
  match Codec.get_u8 c with
  | 0 -> `Abort
  | 1 -> `Proceed
  | n -> raise (Codec.Error (Printf.sprintf "bad policy tag %d" n))

let enc_op b = function
  | Delete p ->
      Codec.u8 b 0;
      Codec.bytes_ b p
  | Insert { etype; attr; path } ->
      Codec.u8 b 1;
      Codec.bytes_ b etype;
      Codec.list_ Codec.value b (Array.to_list attr);
      Codec.bytes_ b path

let dec_op c =
  match Codec.get_u8 c with
  | 0 -> Delete (Codec.get_bytes c)
  | 1 ->
      let etype = Codec.get_bytes c in
      let attr = Array.of_list (Codec.get_list Codec.get_value c) in
      let path = Codec.get_bytes c in
      Insert { etype; attr; path }
  | n -> raise (Codec.Error (Printf.sprintf "bad op tag %d" n))

let encode_request r =
  let b = Buffer.create 64 in
  (match r with
  | Ping -> Codec.u8 b 0
  | Query p ->
      Codec.u8 b 1;
      Codec.bytes_ b p
  | Update { client; req_seq; epoch; policy; ops } ->
      Codec.u8 b 2;
      Codec.bytes_ b client;
      Codec.varint b req_seq;
      Codec.varint b epoch;
      enc_policy b policy;
      Codec.list_ enc_op b ops
  | Stats -> Codec.u8 b 3
  | Checkpoint -> Codec.u8 b 4
  | Shutdown -> Codec.u8 b 5
  | Repl_hello { follower; after; epoch } ->
      Codec.u8 b 6;
      Codec.bytes_ b follower;
      Codec.varint b after;
      Codec.varint b epoch
  | Repl_pull { follower; after; max; wait_ms; epoch } ->
      Codec.u8 b 7;
      Codec.bytes_ b follower;
      Codec.varint b after;
      Codec.varint b max;
      Codec.varint b wait_ms;
      Codec.varint b epoch
  | Query_at { path; min_seq; wait_ms } ->
      Codec.u8 b 8;
      Codec.bytes_ b path;
      Codec.varint b min_seq;
      Codec.varint b wait_ms
  | Promote -> Codec.u8 b 9);
  Buffer.contents b

let check_end c =
  if not (Codec.at_end c) then raise (Codec.Error "trailing bytes in message")

let decode_request s =
  let c = Codec.cursor s in
  let r =
    match Codec.get_u8 c with
    | 0 -> Ping
    | 1 -> Query (Codec.get_bytes c)
    | 2 ->
        let client = Codec.get_bytes c in
        let req_seq = Codec.get_varint c in
        let epoch = Codec.get_varint c in
        let policy = dec_policy c in
        let ops = Codec.get_list dec_op c in
        Update { client; req_seq; epoch; policy; ops }
    | 3 -> Stats
    | 4 -> Checkpoint
    | 5 -> Shutdown
    | 6 ->
        let follower = Codec.get_bytes c in
        let after = Codec.get_varint c in
        let epoch = Codec.get_varint c in
        Repl_hello { follower; after; epoch }
    | 7 ->
        let follower = Codec.get_bytes c in
        let after = Codec.get_varint c in
        let max = Codec.get_varint c in
        let wait_ms = Codec.get_varint c in
        let epoch = Codec.get_varint c in
        Repl_pull { follower; after; max; wait_ms; epoch }
    | 8 ->
        let path = Codec.get_bytes c in
        let min_seq = Codec.get_varint c in
        let wait_ms = Codec.get_varint c in
        Query_at { path; min_seq; wait_ms }
    | 9 -> Promote
    | n -> raise (Codec.Error (Printf.sprintf "bad request tag %d" n))
  in
  check_end c;
  r

let enc_summary b (s : Metrics.summary) =
  Codec.bytes_ b s.Metrics.s_kind;
  Codec.varint b s.Metrics.s_count;
  Codec.varint b s.Metrics.s_p50_us;
  Codec.varint b s.Metrics.s_p95_us;
  Codec.varint b s.Metrics.s_p99_us;
  Codec.varint b s.Metrics.s_max_us;
  Codec.varint b s.Metrics.s_mean_us

let dec_summary c : Metrics.summary =
  let s_kind = Codec.get_bytes c in
  let s_count = Codec.get_varint c in
  let s_p50_us = Codec.get_varint c in
  let s_p95_us = Codec.get_varint c in
  let s_p99_us = Codec.get_varint c in
  let s_max_us = Codec.get_varint c in
  let s_mean_us = Codec.get_varint c in
  { Metrics.s_kind; s_count; s_p50_us; s_p95_us; s_p99_us; s_max_us; s_mean_us }

let enc_counter b (name, v) =
  Codec.bytes_ b name;
  Codec.varint b v

let dec_counter c =
  let name = Codec.get_bytes c in
  let v = Codec.get_varint c in
  (name, v)

let enc_node b (ty, id) =
  Codec.bytes_ b ty;
  Codec.varint b id

let dec_node c =
  let ty = Codec.get_bytes c in
  let id = Codec.get_varint c in
  (ty, id)

let encode_response r =
  let b = Buffer.create 64 in
  (match r with
  | Pong -> Codec.u8 b 0
  | Selected { count; nodes } ->
      Codec.u8 b 1;
      Codec.varint b count;
      Codec.list_ enc_node b nodes
  | Applied { seq; reports; delta_ops } ->
      Codec.u8 b 2;
      Codec.varint b seq;
      Codec.varint b reports;
      Codec.varint b delta_ops
  | Rejected { index; reason } ->
      Codec.u8 b 3;
      Codec.varint b index;
      Codec.bytes_ b reason
  | Overloaded -> Codec.u8 b 4
  | Stats_reply st ->
      Codec.u8 b 5;
      Codec.varint b st.st_nodes;
      Codec.varint b st.st_edges;
      Codec.varint b st.st_m_size;
      Codec.varint b st.st_l_size;
      Codec.varint b st.st_occurrences;
      Codec.varint b st.st_generation;
      Codec.option_ Codec.varint b st.st_wal_records;
      Codec.bytes_ b st.st_health;
      Codec.list_ enc_counter b st.st_counters;
      Codec.list_ enc_counter b st.st_gauges;
      Codec.list_ enc_summary b st.st_latencies
  | Checkpointed { generation; bytes } ->
      Codec.u8 b 6;
      Codec.varint b generation;
      Codec.varint b bytes
  | Bye -> Codec.u8 b 7
  | Error m ->
      Codec.u8 b 8;
      Codec.bytes_ b m
  | Unavailable m ->
      Codec.u8 b 9;
      Codec.bytes_ b m
  | Repl_frames { after; head; records; epoch; boundary } ->
      Codec.u8 b 10;
      Codec.varint b after;
      Codec.varint b head;
      Codec.list_ Codec.bytes_ b records;
      Codec.varint b epoch;
      Codec.option_ Codec.varint b boundary
  | Repl_reset { generation; base; ckpt; epoch; sessions } ->
      Codec.u8 b 11;
      Codec.varint b generation;
      Codec.varint b base;
      Codec.option_ Codec.bytes_ b ckpt;
      Codec.varint b epoch;
      Codec.option_ Codec.bytes_ b sessions
  | Fenced { epoch; leader } ->
      Codec.u8 b 12;
      Codec.varint b epoch;
      Codec.bytes_ b leader
  | Promoted { epoch; seq } ->
      Codec.u8 b 13;
      Codec.varint b epoch;
      Codec.varint b seq);
  Buffer.contents b

let decode_response s =
  let c = Codec.cursor s in
  let r =
    match Codec.get_u8 c with
    | 0 -> Pong
    | 1 ->
        let count = Codec.get_varint c in
        let nodes = Codec.get_list dec_node c in
        Selected { count; nodes }
    | 2 ->
        let seq = Codec.get_varint c in
        let reports = Codec.get_varint c in
        let delta_ops = Codec.get_varint c in
        Applied { seq; reports; delta_ops }
    | 3 ->
        let index = Codec.get_varint c in
        let reason = Codec.get_bytes c in
        Rejected { index; reason }
    | 4 -> Overloaded
    | 5 ->
        let st_nodes = Codec.get_varint c in
        let st_edges = Codec.get_varint c in
        let st_m_size = Codec.get_varint c in
        let st_l_size = Codec.get_varint c in
        let st_occurrences = Codec.get_varint c in
        let st_generation = Codec.get_varint c in
        let st_wal_records = Codec.get_option Codec.get_varint c in
        let st_health = Codec.get_bytes c in
        let st_counters = Codec.get_list dec_counter c in
        let st_gauges = Codec.get_list dec_counter c in
        let st_latencies = Codec.get_list dec_summary c in
        Stats_reply
          { st_nodes; st_edges; st_m_size; st_l_size; st_occurrences;
            st_generation; st_wal_records; st_health; st_counters;
            st_gauges; st_latencies }
    | 6 ->
        let generation = Codec.get_varint c in
        let bytes = Codec.get_varint c in
        Checkpointed { generation; bytes }
    | 7 -> Bye
    | 8 -> Error (Codec.get_bytes c)
    | 9 -> Unavailable (Codec.get_bytes c)
    | 10 ->
        let after = Codec.get_varint c in
        let head = Codec.get_varint c in
        let records = Codec.get_list Codec.get_bytes c in
        let epoch = Codec.get_varint c in
        let boundary = Codec.get_option Codec.get_varint c in
        Repl_frames { after; head; records; epoch; boundary }
    | 11 ->
        let generation = Codec.get_varint c in
        let base = Codec.get_varint c in
        let ckpt = Codec.get_option Codec.get_bytes c in
        let epoch = Codec.get_varint c in
        let sessions = Codec.get_option Codec.get_bytes c in
        Repl_reset { generation; base; ckpt; epoch; sessions }
    | 12 ->
        let epoch = Codec.get_varint c in
        let leader = Codec.get_bytes c in
        Fenced { epoch; leader }
    | 13 ->
        let epoch = Codec.get_varint c in
        let seq = Codec.get_varint c in
        Promoted { epoch; seq }
    | n -> raise (Codec.Error (Printf.sprintf "bad response tag %d" n))
  in
  check_end c;
  r

(* ---- framed socket transport ---- *)

module Io = Rxv_fault.Io

(* [fp] names the failpoint site each syscall passes through; EINTR —
   real or injected — is always resumed at the current offset *)
let write_all ?fp fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Io.write ?site:fp fd b off (n - off) with
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let send ?fp fd payload =
  let b = Buffer.create (String.length payload + Frame.header_bytes) in
  Frame.add b payload;
  write_all ?fp fd (Buffer.contents b)

(* read exactly [n] bytes; `Short when the stream ends first *)
let read_exact ?fp fd n =
  let b = Bytes.create n in
  let rec go off =
    if off = n then `Ok (Bytes.unsafe_to_string b)
    else
      match Io.read ?site:fp fd b off (n - off) with
      | 0 -> `Short off
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let recv ?fp fd =
  match read_exact ?fp fd Frame.header_bytes with
  | `Short 0 -> `Eof
  | `Short _ -> `Corrupt "truncated frame header"
  | `Ok header -> (
      let len =
        Int32.to_int (String.get_int32_le header 0) land 0xFFFFFFFF
      in
      (* acceptance bound, not the 1 GiB writer cap: a hostile or
         corrupted length must not drive an unbounded allocation *)
      if len > Frame.max_accepted () then `Corrupt "frame length out of range"
      else
        match read_exact ?fp fd len with
        | `Short _ -> `Corrupt "truncated frame body"
        | `Ok body -> (
            (* revalidate through the Frame reader: one CRC/shape oracle
               for files and sockets alike *)
            match Frame.read_one (header ^ body) ~pos:0 with
            | `Record (payload, _) -> `Msg payload
            | `Bad reason -> `Corrupt reason
            | `End -> `Corrupt "empty frame"))
