(** The primary's replication feed: a bounded in-memory window over the
    durable WAL record stream, the durable watermark, and the
    per-follower progress registry.

    Commit numbering is the batcher's sequence: one committed group is
    one WAL record is one feed entry. A puller inside the window is
    served from memory; between the current generation's base and the
    window, from the WAL file (the caller performs the disk read);
    before the generation base, it needs a checkpoint reset. Records
    past [head] — the last WAL sync — are never served, so a follower
    cannot apply state the primary could still lose. *)

type t

val create : ?cap:int -> generation:int -> base:int -> last:int -> unit -> t
(** [cap] (default 1024) bounds the in-memory window. [generation]/
    [base] describe the current WAL generation ({!Rxv_persist.Persist.generation},
    [recovered_base]); [last] is the recovered last commit number — the
    stream starts there, with an empty window (older records are on
    disk). *)

val append : t -> string -> unit
(** one committed group's encoded record payload, in commit order — the
    {!Rxv_persist.Persist.tap} [on_group] hook. Not yet servable: the
    record becomes visible to pullers at the next {!durable}. *)

val rotate : t -> generation:int -> base:int -> unit
(** checkpoint rotation — the [on_rotate] hook. Everything appended so
    far became durable (rotation syncs the old WAL before deleting it),
    so the watermark advances; buffered records stay servable from
    memory even though they predate the new generation. *)

val reset : t -> generation:int -> base:int -> unit
(** the [on_reset] hook (durable follower adopting a shipped checkpoint
    or re-initializing): the history was replaced, so the window is
    dropped and the stream restarts at commit [base] *)

val durable : t -> unit
(** advance the watermark to the last appended record — call after every
    successful WAL sync *)

val stop : t -> unit
(** unblock current and future long-polls (they answer empty) *)

val head : t -> int
val seq : t -> int

val pull :
  ?epoch:int ->
  t ->
  follower:string ->
  after:int ->
  max:int ->
  wait_ms:int ->
  [ `Frames of int * string list | `Reset | `Disk of int ]
(** serve one follower pull, recording its progress ([after]) and
    highest witnessed epoch (default 0) in the registry. [`Frames (head, records)] — records for commits [after+1
    ..], possibly empty (caught up; an empty answer is returned after
    long-polling up to [wait_ms] for new durable records). [`Disk n] —
    the caller must read up to [n] records from the current WAL file
    ({!Rxv_persist.Persist.read_group_tail}). [`Reset] — the position
    predates the generation base: ship the checkpoint. *)

type follower_stats = {
  fs_name : string;
  fs_after : int;  (** last reported position *)
  fs_epoch : int;  (** highest epoch the follower reported *)
  fs_lag : int;  (** primary seq minus position *)
  fs_connected : bool;  (** pulled within the last few seconds *)
  fs_pulls : int;
  fs_resets : int;  (** checkpoint resets served *)
}

val followers : t -> follower_stats list
(** registry snapshot, sorted by name *)
