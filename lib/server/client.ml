(** Blocking protocol client. *)

module Value = Rxv_relational.Value

exception Disconnected of string

type t = { fd : Unix.file_descr; mutable closed : bool }

let connect ?(retries = 250) path =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> { fd; closed = false }
    | exception
        Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED) as e, fn, arg) ->
        Unix.close fd;
        if n <= 0 then raise (Unix.Unix_error (e, fn, arg))
        else begin
          Thread.delay 0.02;
          go (n - 1)
        end
    | exception exn ->
        Unix.close fd;
        raise exn
  in
  go retries

let connect_tcp host port =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with exn ->
     Unix.close fd;
     raise exn);
  { fd; closed = false }

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let request t req =
  if t.closed then raise (Disconnected "connection closed");
  (try Proto.send t.fd (Proto.encode_request req)
   with Unix.Unix_error (e, _, _) ->
     close t;
     raise (Disconnected (Unix.error_message e)));
  match Proto.recv t.fd with
  | `Msg payload -> (
      match Proto.decode_response payload with
      | r -> r
      | exception Rxv_persist.Codec.Error msg ->
          close t;
          raise (Disconnected ("undecodable response: " ^ msg)))
  | `Eof ->
      close t;
      raise (Disconnected "server closed the connection")
  | `Corrupt reason ->
      close t;
      raise (Disconnected ("corrupt response frame: " ^ reason))

let ping t =
  match request t Proto.Ping with
  | Proto.Pong -> ()
  | r -> raise (Disconnected (Fmt.str "unexpected reply: %a" Proto.pp_response r))

let query t src =
  match request t (Proto.Query src) with
  | Proto.Selected { count; nodes } -> Ok (count, nodes)
  | Proto.Error m -> Error m
  | r -> Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let update ?(policy = `Proceed) t ops =
  match request t (Proto.Update { policy; ops }) with
  | Proto.Applied { seq; reports; _ } -> `Applied (seq, reports)
  | Proto.Rejected { index; reason } -> `Rejected (index, reason)
  | Proto.Overloaded -> `Overloaded
  | Proto.Error m -> `Error m
  | r -> `Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let insert ?policy t ~etype ~attr ~into =
  update ?policy t [ Proto.Insert { etype; attr; path = into } ]

let delete ?policy t path = update ?policy t [ Proto.Delete path ]

let stats t =
  match request t Proto.Stats with
  | Proto.Stats_reply st -> Ok st
  | Proto.Error m -> Error m
  | r -> Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let checkpoint t =
  match request t Proto.Checkpoint with
  | Proto.Checkpointed { generation; bytes } -> Ok (generation, bytes)
  | Proto.Error m -> Error m
  | r -> Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let shutdown t =
  match request t Proto.Shutdown with
  | Proto.Bye -> ()
  | r -> raise (Disconnected (Fmt.str "unexpected reply: %a" Proto.pp_response r))
