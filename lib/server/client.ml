(** Blocking protocol client. *)

module Value = Rxv_relational.Value

exception Disconnected of string

type t = {
  fd : Unix.file_descr;
  client_id : string;
  fp_read : string option;  (* failpoint sites this connection's I/O *)
  fp_write : string option;  (* passes through, e.g. "repl.read" *)
  mutable next_seq : int;
  mutable closed : bool;
}

(* process-unique-enough client identity: pid, an in-process counter, and
   the sub-second clock — distinct across the concurrent processes and
   threads a chaos run spawns *)
let id_counter = ref 0
let id_mutex = Mutex.create ()

let fresh_id () =
  Mutex.lock id_mutex;
  incr id_counter;
  let n = !id_counter in
  Mutex.unlock id_mutex;
  let us = int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF in
  Printf.sprintf "c%d.%d.%06x" (Unix.getpid ()) n us

(* capped exponential backoff between connection attempts: starts at 2 ms
   and doubles to a 100 ms ceiling, so a client racing a starting server
   connects quickly but a down server is not hammered *)
let backoff_delay attempt =
  let d = 0.002 *. (2. ** float_of_int (min attempt 6)) in
  min d 0.1

(* sleep [total] in small slices so [should_stop] is observed within
   ~10 ms — a follower shutting down must not sit out a whole backoff *)
let interruptible_delay ~should_stop total =
  let slice = 0.01 in
  let rec go left =
    if left > 0. && not (should_stop ()) then begin
      Thread.delay (Stdlib.min slice left);
      go (left -. slice)
    end
  in
  go total

let connect_with ~retries ~retryable ~should_stop ~mk ~fp_prefix client_id =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let client_id =
    match client_id with Some id -> id | None -> fresh_id ()
  in
  let fp suffix = Option.map (fun p -> p ^ suffix) fp_prefix in
  let rec go attempt =
    if should_stop () then raise (Disconnected "connect aborted: stopping");
    let fd, addr = mk () in
    match Unix.connect fd addr with
    | () ->
        { fd; client_id; fp_read = fp ".read"; fp_write = fp ".write";
          next_seq = 1; closed = false }
    | exception Unix.Unix_error (e, fn, arg) when retryable e ->
        Unix.close fd;
        if attempt >= retries then raise (Unix.Unix_error (e, fn, arg))
        else begin
          interruptible_delay ~should_stop (backoff_delay attempt);
          go (attempt + 1)
        end
    | exception exn ->
        Unix.close fd;
        raise exn
  in
  go 0

let set_rcv_timeout fd = function
  | None -> ()
  | Some s -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO s

let connect ?(retries = 60) ?client_id ?rcv_timeout ?fp_prefix
    ?(should_stop = fun () -> false) path =
  let t =
    connect_with ~retries ~retryable:(function
      | Unix.ENOENT | Unix.ECONNREFUSED -> true
      | _ -> false)
      ~should_stop
      ~mk:(fun () ->
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path))
      ~fp_prefix client_id
  in
  set_rcv_timeout t.fd rcv_timeout;
  t

let connect_tcp ?(retries = 60) ?client_id ?rcv_timeout ?fp_prefix
    ?(should_stop = fun () -> false) host port =
  let t =
    connect_with ~retries ~retryable:(function
      | Unix.ECONNREFUSED -> true
      | _ -> false)
      ~should_stop
      ~mk:(fun () ->
        ( Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
          Unix.ADDR_INET (Unix.inet_addr_of_string host, port) ))
      ~fp_prefix client_id
  in
  set_rcv_timeout t.fd rcv_timeout;
  t

let client_id t = t.client_id
let next_seq t = t.next_seq

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let request t req =
  if t.closed then raise (Disconnected "connection closed");
  (try Proto.send ?fp:t.fp_write t.fd (Proto.encode_request req)
   with Unix.Unix_error (e, _, _) ->
     close t;
     raise (Disconnected (Unix.error_message e)));
  match Proto.recv ?fp:t.fp_read t.fd with
  | `Msg payload -> (
      match Proto.decode_response payload with
      | r -> r
      | exception Rxv_persist.Codec.Error msg ->
          close t;
          raise (Disconnected ("undecodable response: " ^ msg)))
  | `Eof ->
      close t;
      raise (Disconnected "server closed the connection")
  | `Corrupt reason ->
      close t;
      raise (Disconnected ("corrupt response frame: " ^ reason))
  (* a receive timeout (SO_RCVTIMEO) or a reset mid-reply surfaces here *)
  | exception Unix.Unix_error (e, _, _) ->
      close t;
      raise (Disconnected (Unix.error_message e))

let ping t =
  match request t Proto.Ping with
  | Proto.Pong -> ()
  | r -> raise (Disconnected (Fmt.str "unexpected reply: %a" Proto.pp_response r))

let query t src =
  match request t (Proto.Query src) with
  | Proto.Selected { count; nodes } -> Ok (count, nodes)
  | Proto.Error m -> Error m
  | r -> Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let update ?(policy = `Proceed) ?req_seq ?(epoch = 0) t ops =
  let seq =
    match req_seq with
    | Some s ->
        if s >= t.next_seq then t.next_seq <- s + 1;
        s
    | None ->
        let s = t.next_seq in
        t.next_seq <- s + 1;
        s
  in
  match
    request t
      (Proto.Update { client = t.client_id; req_seq = seq; epoch; policy; ops })
  with
  | Proto.Applied { seq; reports; _ } -> `Applied (seq, reports)
  | Proto.Rejected { index; reason } -> `Rejected (index, reason)
  | Proto.Overloaded -> `Overloaded
  | Proto.Unavailable m -> `Unavailable m
  | Proto.Fenced { epoch; leader } -> `Fenced (epoch, leader)
  | Proto.Error m -> `Error m
  | r -> `Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let insert ?policy t ~etype ~attr ~into =
  update ?policy t [ Proto.Insert { etype; attr; path = into } ]

let delete ?policy t path = update ?policy t [ Proto.Delete path ]

let query_at t ~min_seq ~wait_ms src =
  match request t (Proto.Query_at { path = src; min_seq; wait_ms }) with
  | Proto.Selected { count; nodes } -> Ok (count, nodes)
  | Proto.Unavailable m -> Error (`Behind m)
  | Proto.Error m -> Error (`Err m)
  | r -> Error (`Err (Fmt.str "unexpected reply: %a" Proto.pp_response r))

let promote t =
  match request t Proto.Promote with
  | Proto.Promoted { epoch; seq } -> Ok (epoch, seq)
  | Proto.Error m -> Error m
  | r -> Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

(* ---- replication stream (follower side) ---- *)

type frames = {
  fr_head : int;  (** primary's durable commit watermark *)
  fr_records : string list;  (** encoded WAL group records *)
  fr_epoch : int;  (** primary's current epoch *)
  fr_boundary : int option;
      (** divergence boundary, present when our epoch was stale *)
}

type reset = {
  rs_generation : int;
  rs_base : int;
  rs_ckpt : string option;  (** [None]: fresh deterministic init *)
  rs_epoch : int;
  rs_sessions : string option;  (** encoded dedup snapshot *)
}

type repl_reply =
  [ `Frames of frames | `Reset of reset | `Fenced of int * string ]

let repl_reply = function
  | Proto.Repl_frames { head; records; epoch; boundary; _ } ->
      Ok
        (`Frames
           { fr_head = head; fr_records = records; fr_epoch = epoch;
             fr_boundary = boundary })
  | Proto.Repl_reset { generation; base; ckpt; epoch; sessions } ->
      Ok
        (`Reset
           { rs_generation = generation; rs_base = base; rs_ckpt = ckpt;
             rs_epoch = epoch; rs_sessions = sessions })
  | Proto.Fenced { epoch; leader } -> Ok (`Fenced (epoch, leader))
  | Proto.Error m -> Error m
  | r -> Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let repl_hello t ~follower ~after ~epoch =
  repl_reply (request t (Proto.Repl_hello { follower; after; epoch }))

let repl_pull t ~follower ~after ~max ~wait_ms ~epoch =
  repl_reply
    (request t (Proto.Repl_pull { follower; after; max; wait_ms; epoch }))

let stats t =
  match request t Proto.Stats with
  | Proto.Stats_reply st -> Ok st
  | Proto.Error m -> Error m
  | r -> Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let checkpoint t =
  match request t Proto.Checkpoint with
  | Proto.Checkpointed { generation; bytes } -> Ok (generation, bytes)
  | Proto.Error m -> Error m
  | r -> Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let shutdown t =
  match request t Proto.Shutdown with
  | Proto.Bye -> ()
  | r -> raise (Disconnected (Fmt.str "unexpected reply: %a" Proto.pp_response r))
