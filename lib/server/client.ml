(** Blocking protocol client. *)

module Value = Rxv_relational.Value

exception Disconnected of string

type t = {
  fd : Unix.file_descr;
  client_id : string;
  fp_read : string option;  (* failpoint sites this connection's I/O *)
  fp_write : string option;  (* passes through, e.g. "repl.read" *)
  mutable next_seq : int;
  mutable closed : bool;
}

(* process-unique-enough client identity: pid, an in-process counter, and
   the sub-second clock — distinct across the concurrent processes and
   threads a chaos run spawns *)
let id_counter = ref 0
let id_mutex = Mutex.create ()

let fresh_id () =
  Mutex.lock id_mutex;
  incr id_counter;
  let n = !id_counter in
  Mutex.unlock id_mutex;
  let us = int_of_float (Unix.gettimeofday () *. 1e6) land 0xFFFFFF in
  Printf.sprintf "c%d.%d.%06x" (Unix.getpid ()) n us

(* capped exponential backoff between connection attempts: starts at 2 ms
   and doubles to a 100 ms ceiling, so a client racing a starting server
   connects quickly but a down server is not hammered *)
let backoff_delay attempt =
  let d = 0.002 *. (2. ** float_of_int (min attempt 6)) in
  min d 0.1

let connect_with ~retries ~retryable ~mk ~fp_prefix client_id =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let client_id =
    match client_id with Some id -> id | None -> fresh_id ()
  in
  let fp suffix = Option.map (fun p -> p ^ suffix) fp_prefix in
  let rec go attempt =
    let fd, addr = mk () in
    match Unix.connect fd addr with
    | () ->
        { fd; client_id; fp_read = fp ".read"; fp_write = fp ".write";
          next_seq = 1; closed = false }
    | exception Unix.Unix_error (e, fn, arg) when retryable e ->
        Unix.close fd;
        if attempt >= retries then raise (Unix.Unix_error (e, fn, arg))
        else begin
          Thread.delay (backoff_delay attempt);
          go (attempt + 1)
        end
    | exception exn ->
        Unix.close fd;
        raise exn
  in
  go 0

let set_rcv_timeout fd = function
  | None -> ()
  | Some s -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO s

let connect ?(retries = 60) ?client_id ?rcv_timeout ?fp_prefix path =
  let t =
    connect_with ~retries ~retryable:(function
      | Unix.ENOENT | Unix.ECONNREFUSED -> true
      | _ -> false)
      ~mk:(fun () ->
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path))
      ~fp_prefix client_id
  in
  set_rcv_timeout t.fd rcv_timeout;
  t

let connect_tcp ?(retries = 60) ?client_id ?rcv_timeout ?fp_prefix host port =
  let t =
    connect_with ~retries ~retryable:(function
      | Unix.ECONNREFUSED -> true
      | _ -> false)
      ~mk:(fun () ->
        ( Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
          Unix.ADDR_INET (Unix.inet_addr_of_string host, port) ))
      ~fp_prefix client_id
  in
  set_rcv_timeout t.fd rcv_timeout;
  t

let client_id t = t.client_id
let next_seq t = t.next_seq

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let request t req =
  if t.closed then raise (Disconnected "connection closed");
  (try Proto.send ?fp:t.fp_write t.fd (Proto.encode_request req)
   with Unix.Unix_error (e, _, _) ->
     close t;
     raise (Disconnected (Unix.error_message e)));
  match Proto.recv ?fp:t.fp_read t.fd with
  | `Msg payload -> (
      match Proto.decode_response payload with
      | r -> r
      | exception Rxv_persist.Codec.Error msg ->
          close t;
          raise (Disconnected ("undecodable response: " ^ msg)))
  | `Eof ->
      close t;
      raise (Disconnected "server closed the connection")
  | `Corrupt reason ->
      close t;
      raise (Disconnected ("corrupt response frame: " ^ reason))
  (* a receive timeout (SO_RCVTIMEO) or a reset mid-reply surfaces here *)
  | exception Unix.Unix_error (e, _, _) ->
      close t;
      raise (Disconnected (Unix.error_message e))

let ping t =
  match request t Proto.Ping with
  | Proto.Pong -> ()
  | r -> raise (Disconnected (Fmt.str "unexpected reply: %a" Proto.pp_response r))

let query t src =
  match request t (Proto.Query src) with
  | Proto.Selected { count; nodes } -> Ok (count, nodes)
  | Proto.Error m -> Error m
  | r -> Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let update ?(policy = `Proceed) ?req_seq t ops =
  let seq =
    match req_seq with
    | Some s ->
        if s >= t.next_seq then t.next_seq <- s + 1;
        s
    | None ->
        let s = t.next_seq in
        t.next_seq <- s + 1;
        s
  in
  match
    request t
      (Proto.Update { client = t.client_id; req_seq = seq; policy; ops })
  with
  | Proto.Applied { seq; reports; _ } -> `Applied (seq, reports)
  | Proto.Rejected { index; reason } -> `Rejected (index, reason)
  | Proto.Overloaded -> `Overloaded
  | Proto.Unavailable m -> `Unavailable m
  | Proto.Error m -> `Error m
  | r -> `Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let insert ?policy t ~etype ~attr ~into =
  update ?policy t [ Proto.Insert { etype; attr; path = into } ]

let delete ?policy t path = update ?policy t [ Proto.Delete path ]

let query_at t ~min_seq ~wait_ms src =
  match request t (Proto.Query_at { path = src; min_seq; wait_ms }) with
  | Proto.Selected { count; nodes } -> Ok (count, nodes)
  | Proto.Unavailable m -> Error (`Behind m)
  | Proto.Error m -> Error (`Err m)
  | r -> Error (`Err (Fmt.str "unexpected reply: %a" Proto.pp_response r))

(* ---- replication stream (follower side) ---- *)

type repl_reply =
  [ `Frames of int * string list  (** durable head, encoded records *)
  | `Reset of int * int * string option
    (** generation, base, checkpoint image *) ]

let repl_reply = function
  | Proto.Repl_frames { head; records; _ } -> Ok (`Frames (head, records))
  | Proto.Repl_reset { generation; base; ckpt } ->
      Ok (`Reset (generation, base, ckpt))
  | Proto.Error m -> Error m
  | r -> Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let repl_hello t ~follower ~after =
  repl_reply (request t (Proto.Repl_hello { follower; after }))

let repl_pull t ~follower ~after ~max ~wait_ms =
  repl_reply (request t (Proto.Repl_pull { follower; after; max; wait_ms }))

let stats t =
  match request t Proto.Stats with
  | Proto.Stats_reply st -> Ok st
  | Proto.Error m -> Error m
  | r -> Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let checkpoint t =
  match request t Proto.Checkpoint with
  | Proto.Checkpointed { generation; bytes } -> Ok (generation, bytes)
  | Proto.Error m -> Error m
  | r -> Error (Fmt.str "unexpected reply: %a" Proto.pp_response r)

let shutdown t =
  match request t Proto.Shutdown with
  | Proto.Bye -> ()
  | r -> raise (Disconnected (Fmt.str "unexpected reply: %a" Proto.pp_response r))
