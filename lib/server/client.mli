(** Blocking client for the view-update service: one request in flight
    per connection, framed over a Unix-domain or TCP socket.

    Every client carries an identity ([client_id], generated unless
    supplied) and a monotonically increasing request sequence number;
    {!update} stamps both onto the wire so the server can deduplicate
    retries (see {!Resilient} for the retrying wrapper). *)

module Value = Rxv_relational.Value

exception Disconnected of string
(** the server closed the stream, a frame failed its CRC, or the socket
    errored/timed out mid-request — the connection is unusable *)

type t

val fresh_id : unit -> string
(** generate a process-unique client identity (pid, counter, clock) *)

val connect :
  ?retries:int -> ?client_id:string -> ?rcv_timeout:float ->
  ?fp_prefix:string -> string -> t
(** connect to a Unix-domain socket path, retrying with capped
    exponential backoff (2 ms doubling to 100 ms; default [retries] 60,
    ≈5 s total) while the path does not exist or refuses — covers the
    race against a server still starting up. [rcv_timeout] sets
    [SO_RCVTIMEO]: a reply slower than this surfaces as {!Disconnected}.
    [fp_prefix] names the {!Rxv_fault} sites this connection's socket
    I/O passes through ([<prefix>.read]/[<prefix>.write]) — e.g.
    ["repl"] for a replication stream under fault injection.
    @raise Unix.Unix_error when retries are exhausted *)

val connect_tcp :
  ?retries:int -> ?client_id:string -> ?rcv_timeout:float ->
  ?fp_prefix:string -> string -> int -> t
(** like {!connect} for TCP; retries [ECONNREFUSED] with the same
    backoff *)

val client_id : t -> string

val next_seq : t -> int
(** the sequence number the next auto-numbered {!update} will use *)

val close : t -> unit

val request : t -> Proto.request -> Proto.response
(** send one request and block for its response.
    @raise Disconnected on EOF, transport corruption, or socket error *)

(** {2 Convenience wrappers} *)

val ping : t -> unit
(** @raise Disconnected when the reply is not [Pong] *)

val query : t -> string -> (int * (string * int) list, string) result
(** [query c xpath] is [Ok (count, listed_nodes)] or the server's error *)

val update :
  ?policy:Proto.policy ->
  ?req_seq:int ->
  t ->
  Proto.op list ->
  [ `Applied of int * int  (** commit seq, reports *)
  | `Rejected of int * string
  | `Overloaded
  | `Unavailable of string
  | `Error of string ]
(** submit one atomic update group; [policy] defaults to [`Proceed].
    [req_seq] overrides the auto-assigned sequence number — a retry of a
    possibly-committed request must re-send the {e same} number to get
    the server's deduplicated answer instead of a second application. *)

val insert : ?policy:Proto.policy -> t -> etype:string -> attr:Value.t array
  -> into:string ->
  [ `Applied of int * int | `Rejected of int * string | `Overloaded
  | `Unavailable of string | `Error of string ]

val delete : ?policy:Proto.policy -> t -> string ->
  [ `Applied of int * int | `Rejected of int * string | `Overloaded
  | `Unavailable of string | `Error of string ]

val query_at :
  t -> min_seq:int -> wait_ms:int -> string ->
  ( int * (string * int) list,
    [ `Behind of string | `Err of string ] ) result
(** bounded-staleness read: answered only from a state covering commit
    [min_seq]. [`Behind] — the replica could not catch up within
    [wait_ms]; route the read to the primary (or another replica). *)

(** {2 Replication stream (follower side)} *)

type repl_reply =
  [ `Frames of int * string list
    (** primary's durable head, encoded WAL group records (decode with
        {!Rxv_persist.Persist.decode_record}) *)
  | `Reset of int * int * string option
    (** generation, base commit, raw checkpoint image ([None]:
        re-initialize from the deterministic initial publication) *) ]

val repl_hello :
  t -> follower:string -> after:int -> (repl_reply, string) result
(** register with the primary and learn its durable head (an empty
    [`Frames]) — or that [after] predates its horizon ([`Reset]) *)

val repl_pull :
  t -> follower:string -> after:int -> max:int -> wait_ms:int ->
  (repl_reply, string) result
(** pull up to [max] records for commits [after+1 ..]; long-polls up to
    [wait_ms] when caught up. [Error] carries the primary's in-protocol
    refusal (e.g. it has no durability directory). *)

val stats : t -> (Proto.server_stats, string) result
val checkpoint : t -> (int * int, string) result
(** [Ok (generation, bytes)] *)

val shutdown : t -> unit
(** ask the server to stop; waits for [Bye] *)
