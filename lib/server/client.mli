(** Blocking client for the view-update service: one request in flight
    per connection, framed over a Unix-domain or TCP socket.

    Every client carries an identity ([client_id], generated unless
    supplied) and a monotonically increasing request sequence number;
    {!update} stamps both onto the wire so the server can deduplicate
    retries (see {!Resilient} for the retrying wrapper). *)

module Value = Rxv_relational.Value

exception Disconnected of string
(** the server closed the stream, a frame failed its CRC, or the socket
    errored/timed out mid-request — the connection is unusable *)

type t

val fresh_id : unit -> string
(** generate a process-unique client identity (pid, counter, clock) *)

val connect :
  ?retries:int -> ?client_id:string -> ?rcv_timeout:float ->
  ?fp_prefix:string -> ?should_stop:(unit -> bool) -> string -> t
(** connect to a Unix-domain socket path, retrying with capped
    exponential backoff (2 ms doubling to 100 ms; default [retries] 60,
    ≈5 s total) while the path does not exist or refuses — covers the
    race against a server still starting up. [rcv_timeout] sets
    [SO_RCVTIMEO]: a reply slower than this surfaces as {!Disconnected}.
    [fp_prefix] names the {!Rxv_fault} sites this connection's socket
    I/O passes through ([<prefix>.read]/[<prefix>.write]) — e.g.
    ["repl"] for a replication stream under fault injection.
    [should_stop] is polled (every ~10 ms) during the inter-attempt
    backoff and before each attempt: when it turns true the connect
    aborts with {!Disconnected} instead of sleeping out its retry
    budget — a stopping follower must not block on a dead primary.
    @raise Unix.Unix_error when retries are exhausted *)

val connect_tcp :
  ?retries:int -> ?client_id:string -> ?rcv_timeout:float ->
  ?fp_prefix:string -> ?should_stop:(unit -> bool) -> string -> int -> t
(** like {!connect} for TCP; retries [ECONNREFUSED] with the same
    backoff *)

val client_id : t -> string

val next_seq : t -> int
(** the sequence number the next auto-numbered {!update} will use *)

val close : t -> unit

val request : t -> Proto.request -> Proto.response
(** send one request and block for its response.
    @raise Disconnected on EOF, transport corruption, or socket error *)

(** {2 Convenience wrappers} *)

val ping : t -> unit
(** @raise Disconnected when the reply is not [Pong] *)

val query : t -> string -> (int * (string * int) list, string) result
(** [query c xpath] is [Ok (count, listed_nodes)] or the server's error *)

val update :
  ?policy:Proto.policy ->
  ?req_seq:int ->
  ?epoch:int ->
  t ->
  Proto.op list ->
  [ `Applied of int * int  (** commit seq, reports *)
  | `Rejected of int * string
  | `Overloaded
  | `Unavailable of string
  | `Fenced of int * string  (** server's epoch, leader address hint *)
  | `Error of string ]
(** submit one atomic update group; [policy] defaults to [`Proceed].
    [req_seq] overrides the auto-assigned sequence number — a retry of a
    possibly-committed request must re-send the {e same} number to get
    the server's deduplicated answer instead of a second application.
    [epoch] (default 0 = not participating) is the highest replication
    epoch this client has witnessed: a write stamped with it can never
    be acknowledged by a deposed primary — the zombie answers [`Fenced]
    and demotes itself instead. *)

val insert : ?policy:Proto.policy -> t -> etype:string -> attr:Value.t array
  -> into:string ->
  [ `Applied of int * int | `Rejected of int * string | `Overloaded
  | `Unavailable of string | `Fenced of int * string | `Error of string ]

val delete : ?policy:Proto.policy -> t -> string ->
  [ `Applied of int * int | `Rejected of int * string | `Overloaded
  | `Unavailable of string | `Fenced of int * string | `Error of string ]

val query_at :
  t -> min_seq:int -> wait_ms:int -> string ->
  ( int * (string * int) list,
    [ `Behind of string | `Err of string ] ) result
(** bounded-staleness read: answered only from a state covering commit
    [min_seq]. [`Behind] — the replica could not catch up within
    [wait_ms]; route the read to the primary (or another replica). *)

val promote : t -> (int * int, string) result
(** ask the server to become the primary; [Ok (epoch, seq)] — its first
    commit of the new epoch will be [seq + 1]. Idempotent against a node
    that is already primary. *)

(** {2 Replication stream (follower side)} *)

type frames = {
  fr_head : int;  (** primary's durable commit watermark *)
  fr_records : string list;
      (** encoded WAL group records (decode with
          {!Rxv_persist.Persist.decode_record}) *)
  fr_epoch : int;  (** primary's current epoch *)
  fr_boundary : int option;
      (** when our reported epoch was stale: the last commit our history
          provably shares with the primary — a position beyond it is a
          diverged suffix that must be truncated before applying *)
}

type reset = {
  rs_generation : int;
  rs_base : int;
  rs_ckpt : string option;
      (** raw checkpoint image ([None]: re-initialize from the
          deterministic initial publication) *)
  rs_epoch : int;
  rs_sessions : string option;
      (** primary's encoded dedup snapshot, to load alongside the image
          so exactly-once retries survive a later promotion *)
}

type repl_reply =
  [ `Frames of frames
  | `Reset of reset
  | `Fenced of int * string
    (** the contacted node is itself fenced (its epoch, leader hint) —
        find the current primary *) ]

val repl_hello :
  t -> follower:string -> after:int -> epoch:int -> (repl_reply, string) result
(** register with the primary and learn its durable head (an empty
    [`Frames]) — or that [after] predates its horizon ([`Reset]) *)

val repl_pull :
  t -> follower:string -> after:int -> max:int -> wait_ms:int -> epoch:int ->
  (repl_reply, string) result
(** pull up to [max] records for commits [after+1 ..]; long-polls up to
    [wait_ms] when caught up. [epoch] is the follower's highest
    witnessed epoch — the primary uses it to decide whether a divergence
    boundary must accompany the frames. [Error] carries the primary's
    in-protocol refusal (e.g. it has no durability directory). *)

val stats : t -> (Proto.server_stats, string) result
val checkpoint : t -> (int * int, string) result
(** [Ok (generation, bytes)] *)

val shutdown : t -> unit
(** ask the server to stop; waits for [Bye] *)
