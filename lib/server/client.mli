(** Blocking client for the view-update service: one request in flight
    per connection, framed over a Unix-domain or TCP socket. *)

module Value = Rxv_relational.Value

exception Disconnected of string
(** the server closed the stream, or a frame failed its CRC *)

type t

val connect : ?retries:int -> string -> t
(** connect to a Unix-domain socket path, retrying (20 ms apart, default
    [retries] 250, i.e. ≈5 s) while the path does not exist or refuses —
    covers the race against a server still starting up.
    @raise Unix.Unix_error when retries are exhausted *)

val connect_tcp : string -> int -> t

val close : t -> unit

val request : t -> Proto.request -> Proto.response
(** send one request and block for its response.
    @raise Disconnected on EOF or transport corruption *)

(** {2 Convenience wrappers} *)

val ping : t -> unit
(** @raise Disconnected when the reply is not [Pong] *)

val query : t -> string -> (int * (string * int) list, string) result
(** [query c xpath] is [Ok (count, listed_nodes)] or the server's error *)

val update :
  ?policy:Proto.policy ->
  t ->
  Proto.op list ->
  [ `Applied of int * int  (** commit seq, reports *)
  | `Rejected of int * string
  | `Overloaded
  | `Error of string ]
(** submit one atomic update group; [policy] defaults to [`Proceed] *)

val insert : ?policy:Proto.policy -> t -> etype:string -> attr:Value.t array
  -> into:string ->
  [ `Applied of int * int | `Rejected of int * string | `Overloaded
  | `Error of string ]

val delete : ?policy:Proto.policy -> t -> string ->
  [ `Applied of int * int | `Rejected of int * string | `Overloaded
  | `Error of string ]

val stats : t -> (Proto.server_stats, string) result
val checkpoint : t -> (int * int, string) result
(** [Ok (generation, bytes)] *)

val shutdown : t -> unit
(** ask the server to stop; waits for [Bye] *)
