(** Counters and log-scale latency histograms. *)

let n_buckets = 40 (* bucket i: [2^i, 2^(i+1)) µs; 2^39 µs ≈ 6.4 days *)

type hist = {
  buckets : int array;
  mutable count : int;
  mutable sum_us : int;
  mutable max_us : int;
}

type t = {
  m : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  { m = Mutex.create (); counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8; hists = Hashtbl.create 8 }

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let add t name n =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + n
      | None -> Hashtbl.replace t.counters name (ref n))

let incr t name = add t name 1

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

(* Gauges: last-write-wins instantaneous values (replication lag,
   connection state). Kept apart from the monotonic counters so a
   repeated [set_gauge] is idempotent and a stale gauge can be dropped
   wholesale. *)

let set_gauge t name v =
  locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.replace t.gauges name (ref v))

let clear_gauge t name = locked t (fun () -> Hashtbl.remove t.gauges name)

let gauge t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some r -> Some !r
      | None -> None)

(* index of the highest set bit, i.e. ⌊log2 us⌋; 0 for us <= 1 *)
let bucket_of_us us =
  let rec go i v = if v <= 1 then i else go (i + 1) (v lsr 1) in
  if us <= 1 then 0 else min (n_buckets - 1) (go 0 us)

let bucket_hi i = (1 lsl (i + 1)) - 1

let record t kind seconds =
  let us = int_of_float (seconds *. 1e6) in
  let us = if us < 0 then 0 else us in
  locked t (fun () ->
      let h =
        match Hashtbl.find_opt t.hists kind with
        | Some h -> h
        | None ->
            let h =
              { buckets = Array.make n_buckets 0; count = 0; sum_us = 0;
                max_us = 0 }
            in
            Hashtbl.replace t.hists kind h;
            h
      in
      let i = bucket_of_us us in
      h.buckets.(i) <- h.buckets.(i) + 1;
      h.count <- h.count + 1;
      h.sum_us <- h.sum_us + us;
      if us > h.max_us then h.max_us <- us)

type summary = {
  s_kind : string;
  s_count : int;
  s_p50_us : int;
  s_p95_us : int;
  s_p99_us : int;
  s_max_us : int;
  s_mean_us : int;
}

(* the upper bound of the bucket containing the q-th observation *)
let quantile h q =
  if h.count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int h.count))) in
    let rec go i seen =
      if i >= n_buckets then h.max_us
      else
        let seen = seen + h.buckets.(i) in
        if seen >= rank then min (bucket_hi i) h.max_us else go (i + 1) seen
    in
    go 0 0
  end

let summarize kind h =
  {
    s_kind = kind;
    s_count = h.count;
    s_p50_us = quantile h 0.50;
    s_p95_us = quantile h 0.95;
    s_p99_us = quantile h 0.99;
    s_max_us = h.max_us;
    s_mean_us = (if h.count = 0 then 0 else h.sum_us / h.count);
  }

let pp_summary ppf s =
  Fmt.pf ppf "%s: n=%d p50=%dus p95=%dus p99=%dus max=%dus mean=%dus" s.s_kind
    s.s_count s.s_p50_us s.s_p95_us s.s_p99_us s.s_max_us s.s_mean_us

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  latencies : summary list;
}

let snapshot t =
  locked t (fun () ->
      {
        counters =
          Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
          |> List.sort compare;
        gauges =
          Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges []
          |> List.sort compare;
        latencies =
          Hashtbl.fold (fun k h acc -> summarize k h :: acc) t.hists []
          |> List.sort compare;
      })
