(** Per-client exactly-once dedup table. *)

module Persist = Rxv_persist.Persist

type entry = {
  mutable e_seq : int;
  mutable e_commit : int;
  mutable e_reports : int;
  mutable e_delta : int;
  mutable e_time : float;  (* last acknowledgment, for age-gated eviction *)
}

type t = { cap : int; min_age : float; tbl : (string, entry) Hashtbl.t }

let create ?(cap = 1024) ?(min_age = 60.) () =
  { cap; min_age; tbl = Hashtbl.create 64 }

let size t = Hashtbl.length t.tbl

let check t ~client ~seq =
  match Hashtbl.find_opt t.tbl client with
  | None -> `Fresh
  | Some e ->
      if seq > e.e_seq then `Fresh
      else if seq = e.e_seq then `Duplicate (e.e_commit, e.e_reports, e.e_delta)
      else `Stale

(* the entry that has gone longest without an acknowledgment *)
let oldest t =
  Hashtbl.fold
    (fun client e acc ->
      match acc with
      | Some (_, best) when best.e_time <= e.e_time -> acc
      | _ -> Some (client, e))
    t.tbl None

let admit ?(now = Unix.gettimeofday ()) t ~client =
  if Hashtbl.mem t.tbl client || Hashtbl.length t.tbl < t.cap then `Ok
  else
    match oldest t with
    | Some (victim, e) when now -. e.e_time >= t.min_age ->
        (* silent for [min_age]: the client has abandoned its retries,
           so dropping its entry cannot break an in-flight duplicate *)
        Hashtbl.remove t.tbl victim;
        `Evicted victim
    | _ -> `Full

let record ?(now = Unix.gettimeofday ()) t ~client ~seq ~commit ~reports ~delta
    =
  match Hashtbl.find_opt t.tbl client with
  | Some e ->
      e.e_seq <- seq;
      e.e_commit <- commit;
      e.e_reports <- reports;
      e.e_delta <- delta;
      e.e_time <- now;
      false
  | None ->
      (* the commit already happened, so the entry MUST go in; callers
         gate admission with {!admit}, making eviction here a last
         resort (reported so the caller can count it) *)
      let evicted =
        Hashtbl.length t.tbl >= t.cap
        &&
        match oldest t with
        | Some (victim, _) ->
            Hashtbl.remove t.tbl victim;
            true
        | None -> false
      in
      Hashtbl.replace t.tbl client
        { e_seq = seq; e_commit = commit; e_reports = reports;
          e_delta = delta; e_time = now };
      evicted

let snapshot t =
  Hashtbl.fold
    (fun client e acc ->
      { Persist.sess_client = client; sess_seq = e.e_seq;
        sess_commit = e.e_commit; sess_reports = e.e_reports;
        sess_delta = e.e_delta }
      :: acc)
    t.tbl []

let load ?(now = Unix.gettimeofday ()) t sessions =
  Hashtbl.reset t.tbl;
  List.iter
    (fun (s : Persist.session) ->
      Hashtbl.replace t.tbl s.Persist.sess_client
        { e_seq = s.Persist.sess_seq; e_commit = s.Persist.sess_commit;
          e_reports = s.Persist.sess_reports; e_delta = s.Persist.sess_delta;
          e_time = now })
    sessions
