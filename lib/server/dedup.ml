(** Per-client exactly-once dedup table. *)

module Persist = Rxv_persist.Persist

type entry = {
  mutable e_seq : int;
  mutable e_commit : int;
  mutable e_reports : int;
  mutable e_delta : int;
}

type t = { cap : int; tbl : (string, entry) Hashtbl.t }

let create ?(cap = 1024) () = { cap; tbl = Hashtbl.create 64 }
let size t = Hashtbl.length t.tbl

let check t ~client ~seq =
  match Hashtbl.find_opt t.tbl client with
  | None -> `Fresh
  | Some e ->
      if seq > e.e_seq then `Fresh
      else if seq = e.e_seq then `Duplicate (e.e_commit, e.e_reports, e.e_delta)
      else `Stale

let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun client e acc ->
        match acc with
        | Some (_, best) when best.e_commit <= e.e_commit -> acc
        | _ -> Some (client, e))
      t.tbl None
  in
  match victim with Some (client, _) -> Hashtbl.remove t.tbl client | None -> ()

let record t ~client ~seq ~commit ~reports ~delta =
  match Hashtbl.find_opt t.tbl client with
  | Some e ->
      e.e_seq <- seq;
      e.e_commit <- commit;
      e.e_reports <- reports;
      e.e_delta <- delta
  | None ->
      if Hashtbl.length t.tbl >= t.cap then evict_oldest t;
      Hashtbl.replace t.tbl client
        { e_seq = seq; e_commit = commit; e_reports = reports; e_delta = delta }

let snapshot t =
  Hashtbl.fold
    (fun client e acc ->
      { Persist.sess_client = client; sess_seq = e.e_seq;
        sess_commit = e.e_commit; sess_reports = e.e_reports;
        sess_delta = e.e_delta }
      :: acc)
    t.tbl []

let load t sessions =
  Hashtbl.reset t.tbl;
  List.iter
    (fun (s : Persist.session) ->
      Hashtbl.replace t.tbl s.Persist.sess_client
        { e_seq = s.Persist.sess_seq; e_commit = s.Persist.sess_commit;
          e_reports = s.Persist.sess_reports; e_delta = s.Persist.sess_delta })
    sessions
