(** The wire protocol: CRC-framed request/response messages.

    Every message on the socket is one {!Rxv_persist.Frame} record —
    [len ∥ crc32 ∥ payload] — whose payload is encoded with the
    {!Rxv_persist.Codec} primitives. The framing gives the service the
    same tail discipline as the WAL: a receiver can always classify what
    it read as a complete valid message, a truncated one, or corruption,
    and fail just that connection cleanly.

    Updates travel as XPath {e source text} plus typed attribute values;
    the server parses and validates them, so a malformed path is an
    in-protocol [Error] reply, never a broken stream. *)

module Value = Rxv_relational.Value

type policy = [ `Abort | `Proceed ]

type op =
  | Delete of string  (** delete <xpath> *)
  | Insert of { etype : string; attr : Value.t array; path : string }
      (** insert (etype, attr) into <xpath> *)

type request =
  | Ping
  | Query of string  (** XPath source *)
  | Update of {
      client : string;
      req_seq : int;
      epoch : int;
      policy : policy;
      ops : op list;
    }
      (** one atomic group: all ops commit (and become durable) together
          or none do. [client]/[req_seq] identify the request for
          exactly-once retry: a client that re-sends after a timeout or
          reconnect uses the {e same} sequence number, and the server
          answers an already-committed request from its dedup table
          instead of re-applying it. [client = ""] opts out (no dedup,
          at-most-once from the client's point of view). [epoch] is the
          highest replication epoch the client has witnessed ([0] = not
          participating): a server whose own epoch is higher answers
          {!Fenced}; a primary that {e receives} a higher epoch has been
          deposed and demotes itself before refusing. *)
  | Stats
  | Checkpoint
  | Shutdown
  | Repl_hello of { follower : string; after : int; epoch : int }
      (** a follower introduces itself: [follower] is its name (for the
          primary's lag registry), [after] the last commit number it has
          applied, [epoch] the highest epoch it has witnessed. Answered
          with an empty {!Repl_frames} (telling the follower the
          primary's durable head, epoch, and — when the follower's epoch
          is stale — the divergence boundary) or a {!Repl_reset} when
          the position predates what the primary can still stream. A
          primary seeing [epoch] above its own has been deposed: it
          demotes itself and answers {!Fenced}. *)
  | Repl_pull of {
      follower : string;
      after : int;
      max : int;
      wait_ms : int;
      epoch : int;
    }
      (** stream request: up to [max] committed group records for commit
          numbers [after+1 ..]. When the follower is caught up the
          primary parks the request for up to [wait_ms] before answering
          an empty {!Repl_frames} — long-polling, so a steady state
          stream needs no extra channel. Each pull doubles as the
          follower's progress acknowledgement. [epoch] fences exactly as
          in {!Repl_hello}. *)
  | Query_at of { path : string; min_seq : int; wait_ms : int }
      (** bounded-staleness read: answer only from a state that includes
          commit [min_seq], waiting up to [wait_ms] for it; otherwise
          reply [Unavailable] so the client can redirect to the
          primary. [min_seq = 0] is a plain query. *)
  | Promote
      (** operator-driven failover: ask this replica to become the
          primary — stop its follower loop, bump the epoch, durably log
          the transition, and start accepting writes. Answered with
          {!Promoted} (idempotent on a node that is already primary) or
          [Error] when the node cannot serve as one. *)

type server_stats = {
  st_nodes : int;
  st_edges : int;
  st_m_size : int;
  st_l_size : int;
  st_occurrences : int;
  st_generation : int;
      (** the MVCC generation the reply describes: the published
          snapshot's under snapshot reads, the live cache generation
          under locked reads *)
  st_wal_records : int option;  (** [None] when the server has no WAL *)
  st_health : string;
      (** ["ok"], or ["degraded: <reason>"] while the server is in
          read-only mode after a durability failure *)
  st_counters : (string * int) list;
  st_gauges : (string * int) list;
      (** instantaneous values: replication positions, per-follower lag
          and connection state (see {!Metrics.set_gauge}) *)
  st_latencies : Metrics.summary list;
}

type response =
  | Pong
  | Selected of { count : int; nodes : (string * int) list }
      (** query result: |r[[p]]| and a bounded prefix of (etype, id) *)
  | Applied of { seq : int; reports : int; delta_ops : int }
      (** the group committed (durably, if a WAL is attached) as commit
          number [seq] in the server's serialization order *)
  | Rejected of { index : int; reason : string }
      (** op [index] was rejected; the whole group rolled back *)
  | Overloaded
      (** backpressure: the update queue was full; retry later *)
  | Stats_reply of server_stats
  | Checkpointed of { generation : int; bytes : int }
  | Bye  (** shutdown acknowledged; the server is stopping *)
  | Error of string  (** request-level failure; the connection survives *)
  | Unavailable of string
      (** the server cannot guarantee durability right now (degraded
          read-only mode, or the sync for this batch failed); the update
          was {e not} acknowledged and is safe to retry — with the same
          [req_seq] — once the server recovers *)
  | Repl_frames of {
      after : int;
      head : int;
      records : string list;
      epoch : int;
      boundary : int option;
    }
      (** answer to {!Repl_hello}/{!Repl_pull}: the encoded WAL group
          records for commits [after+1 .. after+|records|] — byte-equal
          to what the primary logged, decoded with
          {!Rxv_persist.Persist.decode_record} — plus [head], the
          primary's durable commit watermark (records beyond the last
          fsync are never streamed). [records = []] with [head > after]
          means "pull again"; with [head = after], "caught up".

          [epoch] is the primary's current epoch — a follower adopts it
          when higher than its own. [boundary] is present when the
          {e requester's} epoch was stale: the last commit its history
          provably shares with the primary's. A follower whose [after]
          exceeds the boundary has a diverged suffix and must repair
          (truncate and re-sync) before applying anything. *)
  | Repl_reset of {
      generation : int;
      base : int;
      ckpt : string option;
      epoch : int;
      sessions : string option;
    }
      (** the follower's position predates the primary's stream horizon:
          reinstall from [ckpt] (the raw checkpoint image of
          [generation], whose WAL starts at commit [base]) — or, when
          [ckpt = None] (generation 0), from the deterministic initial
          publication — then pull again from [base]. [epoch] as in
          {!Repl_frames}. [sessions], when present, is the primary's
          encoded dedup snapshot as of [generation]'s rotation
          ({!Rxv_persist.Persist.encode_sessions_record}): the follower
          loads it so exactly-once retries survive a later promotion
          even for requests acknowledged before the checkpoint. *)
  | Fenced of { epoch : int; leader : string }
      (** definitive refusal of a stale-epoch request: the sender's
          epoch (or this node's role) belongs to a superseded primary.
          Never retryable against this node at that epoch. [epoch] is
          the highest epoch this node knows; [leader] is an address hint
          for the current primary (["" ] when unknown) in
          ["unix:<path>"] / ["tcp:<host>:<port>"] form. *)
  | Promoted of { epoch : int; seq : int }
      (** promotion succeeded: this node is now the primary for [epoch],
          whose first commit will be [seq + 1] *)

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit

(** {2 Codec} — pure payload encoding (framing excluded) *)

val encode_request : request -> string
val decode_request : string -> request
(** @raise Rxv_persist.Codec.Error on malformed payload *)

val encode_response : response -> string
val decode_response : string -> response
(** @raise Rxv_persist.Codec.Error on malformed payload *)

(** {2 Framed socket transport} *)

val send : ?fp:string -> Unix.file_descr -> string -> unit
(** frame the payload and write it whole, resuming over EINTR and short
    writes. [fp] names the {!Rxv_fault} site every underlying [write]
    passes through (e.g. ["srv.write"]). *)

val recv :
  ?fp:string -> Unix.file_descr -> [ `Msg of string | `Eof | `Corrupt of string ]
(** read exactly one framed message, resuming over EINTR. [`Eof] is a
    clean close before a frame starts; a truncated header/body, a CRC
    mismatch, or a declared length above {!Rxv_persist.Frame.max_accepted}
    is [`Corrupt] — the stream is unusable from here and must be closed.
    [fp] names the failpoint site for the underlying reads. *)
