(** The concurrent view-update service.

    One listening socket (Unix-domain or TCP), one handler thread per
    connection, one {!Batcher} writer thread. Locking discipline:

    - queries and stats are, by default ([`Snapshot] read mode), served
      from the latest MVCC snapshot the batcher published at the end of
      its last write batch — no lock at all, so readers never block
      behind the writer's exclusive section (in [`Locked] mode they take
      the {!Rwlock} in shared mode instead, as before);
    - update groups are serialized through the batcher, which holds the
      exclusive side only while applying (never across the sync);
    - checkpoints and degraded-mode durability probes take the exclusive
      side directly (plus the sync mutex shared with the batcher).

    Protocol-level failures (unparsable XPath, unknown element type) are
    [Error] replies on a healthy connection; transport-level corruption
    (bad CRC, truncated frame) or socket death (EPIPE, ECONNRESET,
    injected EIO) kills just that connection.

    {b Degraded read-only mode.} When durability fails — a WAL sync or
    checkpoint raises — the server stops accepting writes ([Unavailable]
    replies) but keeps serving queries and stats (which report the
    condition via [st_health]). Each subsequent write attempt may probe
    the device (rate-limited by [probe_interval]); the first successful
    sync both proves the device recovered and flushes everything that
    was buffered, so service resumes with nothing lost.

    {b Exactly-once updates.} Updates carrying a client identity are
    deduplicated against the {!Dedup} table (rebuilt from the WAL at
    recovery, snapshotted into each new generation at checkpoint): a
    retry of an acknowledged request returns the original answer instead
    of applying twice. *)

module Engine = Rxv_core.Engine
module Persist = Rxv_persist.Persist

type address =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** bind address, port *)

type read_mode =
  [ `Locked  (** queries/stats take the rwlock's shared side *)
  | `Snapshot
    (** queries/stats answer from the batcher-published MVCC snapshot,
        taking no lock at all — a reader never waits behind the writer's
        exclusive section, and the writer never waits behind a long
        read *) ]

type role =
  [ `Primary  (** accepts updates; streams its WAL to pulling followers *)
  | `Replica
    (** read-only: updates get a definitive [Fenced] (route to the
        primary); the state advances only through the follower loop's
        {!exclusive}/{!publish_applied}. [config.role] is only the
        {e starting} role — {!promote} turns a replica into the
        primary, and a deposed primary demotes itself when fenced. *) ]

type config = {
  queue_cap : int;  (** pending update groups before [Overloaded] *)
  batch_cap : int;  (** commits amortized per WAL sync *)
  max_listed : int;  (** node ids listed in a query reply *)
  probe_interval : float;
      (** min seconds between degraded-mode durability probes *)
  max_sessions : int;
      (** dedup-table capacity; beyond it new client sessions are
          refused ([Overloaded]) unless an entry has aged out *)
  read_mode : read_mode;  (** how queries and stats are served *)
  role : role;
}

val default_config : config
(** [{ queue_cap = 128; batch_cap = 64; max_listed = 32;
      probe_interval = 0.25; max_sessions = 1024;
      read_mode = `Snapshot; role = `Primary }] *)

type health = [ `Ok | `Degraded of string ]

type t

val start : ?config:config -> ?persist:Persist.t -> address -> Engine.t -> t
(** bind, listen and serve. When [persist] is given the engine's WAL
    hook is (re)attached in [deferred_sync] mode, the batcher syncs it
    once per batch, and the dedup table / commit counter resume from the
    recovered WAL state; without it updates are volatile (and dedup is
    in-memory only). On a [`Replica] the engine hook stays detached —
    the durable follower loop logs the primary's records verbatim
    ({!Persist.append_raw}) so its log is byte-identical and therefore
    promotable; {!promote} attaches the hook.
    @raise Unix.Unix_error when binding fails *)

val engine : t -> Engine.t
val metrics : t -> Metrics.t
val address : t -> address

val batcher : t -> Batcher.t
(** the single-writer group-commit loop (e.g. for {!Batcher.seq}) *)

val dedup : t -> Dedup.t
(** the exactly-once session table *)

val feed : t -> Repl_feed.t option
(** the replication feed — present iff the server persists; the WAL is
    the stream's unit of truth, so a volatile server streams nothing *)

val role : t -> role
(** the node's {e current} role (may differ from [config.role] after a
    promotion or a fencing demotion) *)

val epoch : t -> int
(** highest replication epoch this node has witnessed *)

val note_epoch : t -> int -> unit
(** adopt a higher witnessed epoch (no-op when not higher) — the
    follower loop's hook when the primary's replies carry a newer one *)

val leader_hint : t -> string
val set_leader_hint : t -> string -> unit
(** best-known primary address, included in [Fenced] refusals so a
    fenced client can redirect (["unix:<path>"] / ["tcp:<host>:<port>"];
    [""] unknown) *)

val set_promote_hook : t -> (unit -> unit) -> unit
(** installed by the follower runtime: {!promote} calls it first to stop
    the replication loop, freezing the applied position before the epoch
    boundary is read *)

val promote : t -> int * int
(** make this node the primary: stop the follower loop (promote hook),
    bump the epoch, durably log the transition ({!Persist.append_epoch})
    {e before} any write of the new epoch can be accepted, adopt the
    applied position as the commit counter, and flip the role. Returns
    [(epoch, boundary)] — the first commit of the new epoch is
    [boundary + 1]. Idempotent on a node that is already primary. *)

val sync_persist : t -> unit
(** fsync the WAL (under the server's sync discipline) and advance the
    replication feed's durable watermark — the durable follower loop
    calls this after each raw-appended batch, mirroring the batcher's
    per-batch sync *)

val applied_seq : t -> int
(** the commit number the published snapshot covers — on a primary the
    batcher's sequence at the last publish, on a replica the follower's
    last {!publish_applied} *)

val exclusive : t -> (unit -> 'a) -> 'a
(** run [f] holding the engine's exclusive (writer) side — the follower
    loop's apply section, same lock as the batcher's batches *)

val publish_applied : t -> seq:int -> unit
(** freeze the current committed state as the published MVCC snapshot
    and open the {!Rxv_server.Proto.request.Query_at} read gate up to
    commit [seq] — the replica-side mirror of the batcher's per-batch
    publish. Call outside {!exclusive}, with no transaction frame
    open. *)

val health : t -> health
val health_string : t -> string
(** ["ok"] or ["degraded: <reason>"] *)

val initiate_stop : t -> unit
(** ask the accept loop to wind down; returns immediately (safe to call
    from a handler thread) *)

val wait : t -> unit
(** block until the server has stopped: accept loop exited, live
    connections shut down and joined, batcher drained and joined,
    socket closed (and unlinked for Unix-domain). *)

val stop : t -> unit
(** {!initiate_stop} then {!wait} — never call from a handler thread *)
