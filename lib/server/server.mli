(** The concurrent view-update service.

    One listening socket (Unix-domain or TCP), one handler thread per
    connection, one {!Batcher} writer thread. Locking discipline:

    - queries and stats take the {!Rwlock} in shared mode — any number
      run concurrently, including while the batcher's WAL sync for the
      previous write batch is still in flight;
    - update groups are serialized through the batcher, which holds the
      exclusive side only while applying (never across the sync);
    - checkpoints take the exclusive side directly.

    Protocol-level failures (unparsable XPath, unknown element type) are
    [Error] replies on a healthy connection; transport-level corruption
    (bad CRC, truncated frame) kills just that connection. *)

module Engine = Rxv_core.Engine
module Persist = Rxv_persist.Persist

type address =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** bind address, port *)

type config = {
  queue_cap : int;  (** pending update groups before [Overloaded] *)
  batch_cap : int;  (** commits amortized per WAL sync *)
  max_listed : int;  (** node ids listed in a query reply *)
}

val default_config : config
(** [{ queue_cap = 128; batch_cap = 64; max_listed = 32 }] *)

type t

val start : ?config:config -> ?persist:Persist.t -> address -> Engine.t -> t
(** bind, listen and serve. When [persist] is given the engine's WAL
    hook is (re)attached in [deferred_sync] mode and the batcher syncs
    it once per batch; without it updates are volatile.
    @raise Unix.Unix_error when binding fails *)

val engine : t -> Engine.t
val metrics : t -> Metrics.t
val address : t -> address

val batcher : t -> Batcher.t
(** the single-writer group-commit loop (e.g. for {!Batcher.seq}) *)

val initiate_stop : t -> unit
(** ask the accept loop to wind down; returns immediately (safe to call
    from a handler thread) *)

val wait : t -> unit
(** block until the server has stopped: accept loop exited, live
    connections shut down and joined, batcher drained and joined,
    socket closed (and unlinked for Unix-domain). *)

val stop : t -> unit
(** {!initiate_stop} then {!wait} — never call from a handler thread *)
