(** Accept loop, per-connection handlers, and request dispatch. *)

module Engine = Rxv_core.Engine
module Xupdate = Rxv_core.Xupdate
module Parser = Rxv_xpath.Parser
module Dag_eval = Rxv_core.Dag_eval
module Store = Rxv_dag.Store
module Atg = Rxv_atg.Atg
module Value = Rxv_relational.Value
module Persist = Rxv_persist.Persist
module Codec = Rxv_persist.Codec
module Io = Rxv_fault.Io

let src = Logs.Src.create "rxv.server" ~doc:"view-update service"

module Log = (val Logs.src_log src : Logs.LOG)

type address = Unix_sock of string | Tcp of string * int

type read_mode = [ `Locked | `Snapshot ]
type role = [ `Primary | `Replica ]

type config = {
  queue_cap : int;
  batch_cap : int;
  max_listed : int;
  probe_interval : float;
  max_sessions : int;
  read_mode : read_mode;
  role : role;
}

let default_config =
  { queue_cap = 128; batch_cap = 64; max_listed = 32; probe_interval = 0.25;
    max_sessions = 1024; read_mode = `Snapshot; role = `Primary }

(* bound on records per Repl_frames reply, whatever the puller asks
   for: keeps one reply's memory and frame size proportionate *)
let max_pull_records = 4096

type health = [ `Ok | `Degraded of string ]

type t = {
  cfg : config;
  eng : Engine.t;
  persist : Persist.t option;
  lock : Rwlock.t;
  mtr : Metrics.t;
  batcher : Batcher.t;
  dedup : Dedup.t;
  addr : address;
  listen_fd : Unix.file_descr;
  stop_rd : Unix.file_descr;  (* self-pipe: wakes the accept select *)
  stop_wr : Unix.file_descr;
  m : Mutex.t;
  sync_m : Mutex.t;
      (* serializes every Persist.sync/checkpoint: the batcher's
         group-commit sync, the degraded-mode durability probe, and
         checkpoint rotation all touch the same WAL writer *)
  mutable health : health;
  mutable last_probe : float;
  mutable role : role;
      (* starts as [cfg.role]; promotion flips a replica to primary,
         and a fenced (deposed) primary demotes itself to replica *)
  mutable epoch_ : int;
      (* highest replication epoch this node has witnessed — stamped
         into every reply that carries one, compared against every
         request that does *)
  mutable leader_hint : string;
      (* best-known primary address for Fenced redirects ("" unknown) *)
  mutable promote_hook : (unit -> unit) option;
      (* runs first in [promote]: stops the follower loop so the
         applied position freezes before the epoch boundary is read *)
  promote_m : Mutex.t;  (* serializes promotions *)
  mutable stopping : bool;
  mutable conns : (int * Unix.file_descr) list;  (* live client fds *)
  mutable handlers : Thread.t list;
  mutable conn_ids : int;
  mutable accept_thread : Thread.t option;
  mutable published : Engine.Snapshot.t;
      (* the latest committed MVCC snapshot; replaced by the batcher at
         the end of every write batch (a single pointer store), read by
         query/stats handlers without touching the rwlock *)
  mutable applied_seq : int;
      (* commit number the published snapshot covers: the read gate for
         Query_at. On a primary the batcher advances it at publish; on a
         replica the follower loop does, through publish_applied. *)
  feed : Repl_feed.t option;
      (* the replication feed — present iff the server persists (the
         WAL is the stream's unit of truth; a volatile server has
         nothing durable to replicate) *)
}

let engine t = t.eng
let metrics t = t.mtr
let address t = t.addr
let batcher t = t.batcher
let dedup t = t.dedup
let feed t = t.feed
let applied_seq t = t.applied_seq

let role t =
  Mutex.lock t.m;
  let r = t.role in
  Mutex.unlock t.m;
  r

let epoch t =
  Mutex.lock t.m;
  let e = t.epoch_ in
  Mutex.unlock t.m;
  e

let note_epoch t e =
  Mutex.lock t.m;
  if e > t.epoch_ then t.epoch_ <- e;
  Mutex.unlock t.m

let leader_hint t =
  Mutex.lock t.m;
  let l = t.leader_hint in
  Mutex.unlock t.m;
  l

let set_leader_hint t hint =
  Mutex.lock t.m;
  t.leader_hint <- hint;
  Mutex.unlock t.m

let set_promote_hook t hook = t.promote_hook <- Some hook

(* the follower's apply path: run [f] holding the engine's exclusive
   side — exactly the section the batcher applies batches under *)
let exclusive t f = Rwlock.with_write t.lock f

(* the follower's publish path: freeze the state just applied and open
   the read gate up to [seq] — the replica-side mirror of the batcher's
   per-batch publish. Call outside the exclusive section, with no frame
   open. *)
let publish_applied t ~seq =
  t.published <- Engine.Snapshot.capture t.eng;
  t.applied_seq <- seq;
  Metrics.incr t.mtr "snapshots_published"

let health t =
  Mutex.lock t.m;
  let h = t.health in
  Mutex.unlock t.m;
  h

let health_string t =
  match health t with `Ok -> "ok" | `Degraded r -> "degraded: " ^ r

(* ---- degraded read-only mode ---- *)

let degrade t reason =
  Mutex.lock t.m;
  let first = t.health = `Ok in
  if first then t.health <- `Degraded reason;
  Mutex.unlock t.m;
  if first then begin
    Metrics.incr t.mtr "degraded_entries";
    Log.err (fun m -> m "durability failure, entering read-only mode: %s" reason)
  end

(* While degraded, each write attempt may (rate-limited by
   [probe_interval]) probe the device with a real WAL sync. The probe
   runs under the exclusive lock AND the sync mutex so it cannot race
   the batcher's appends or syncs. A success both proves the device
   works again and makes every previously-buffered record durable — so
   leaving degraded mode is itself the repair. *)
let check_health t =
  match health t with
  | `Ok -> `Ok
  | `Degraded reason -> (
      match t.persist with
      | None -> `Degraded reason
      | Some p ->
          let now = Unix.gettimeofday () in
          Mutex.lock t.m;
          let due = now -. t.last_probe >= t.cfg.probe_interval in
          if due then t.last_probe <- now;
          Mutex.unlock t.m;
          if not due then `Degraded reason
          else begin
            Metrics.incr t.mtr "health_probes";
            match
              Rwlock.with_write t.lock (fun () ->
                  Mutex.lock t.sync_m;
                  Fun.protect
                    ~finally:(fun () -> Mutex.unlock t.sync_m)
                    (fun () -> Persist.sync p))
            with
            | () ->
                Mutex.lock t.m;
                t.health <- `Ok;
                Mutex.unlock t.m;
                Option.iter Repl_feed.durable t.feed;
                Metrics.incr t.mtr "degraded_exits";
                Log.info (fun m -> m "durability restored, accepting writes");
                `Ok
            | exception _ -> `Degraded reason
          end)

(* ---- connection bookkeeping ---- *)

let register_conn t fd =
  Mutex.lock t.m;
  t.conn_ids <- t.conn_ids + 1;
  let id = t.conn_ids in
  t.conns <- (id, fd) :: t.conns;
  Mutex.unlock t.m;
  id

let forget_conn t id =
  Mutex.lock t.m;
  t.conns <- List.filter (fun (i, _) -> i <> id) t.conns;
  Mutex.unlock t.m

(* ---- epoch fencing ---- *)

(* A request carrying a {e higher} epoch than ours proves a newer
   primary exists: adopt the epoch, and if this node still believes it
   is the primary it has been deposed — demote on the spot, {e before}
   the refusal goes out, so a zombie primary can never again acknowledge
   a write or feed a follower. Applies to every epoch-stamped request:
   the server cannot serve anything meaningful at an epoch it has never
   witnessed. *)
let fence_ahead t ~epoch:req_epoch =
  Mutex.lock t.m;
  let verdict =
    if req_epoch > t.epoch_ then begin
      t.epoch_ <- req_epoch;
      if t.role = `Primary then begin
        t.role <- `Replica;
        `Deposed
      end
      else `Refuse
    end
    else `Pass
  in
  let e = t.epoch_ and leader = t.leader_hint in
  Mutex.unlock t.m;
  match verdict with
  | `Pass -> None
  | `Deposed ->
      Metrics.incr t.mtr "demotions";
      Log.warn (fun m ->
          m "deposed: request carried epoch %d, ours was stale; demoting to \
             read-only replica" req_epoch);
      Some (Proto.Fenced { epoch = e; leader })
  | `Refuse ->
      Metrics.incr t.mtr "fenced";
      Some (Proto.Fenced { epoch = e; leader })

(* A {e write} carrying a lower nonzero epoch comes through a client
   fenced off by a promotion we already witnessed: refuse definitively
   (the client must learn the new epoch and primary first). Pulls are
   deliberately NOT fenced this way — a stale-epoch follower is exactly
   the one that needs to catch up, and it gets its divergence boundary
   alongside the frames instead. [epoch = 0] opts out entirely. *)
let fence_stale t ~epoch:req_epoch =
  Mutex.lock t.m;
  let stale = req_epoch > 0 && req_epoch < t.epoch_ in
  let e = t.epoch_ and leader = t.leader_hint in
  Mutex.unlock t.m;
  if stale then begin
    Metrics.incr t.mtr "fenced";
    Some (Proto.Fenced { epoch = e; leader })
  end
  else None

(* ---- request dispatch ---- *)

let parse_path src =
  try Ok (Parser.parse src)
  with Parser.Parse_error (msg, pos) ->
    Result.error (Printf.sprintf "XPath parse error at offset %d: %s" pos msg)

let op_to_xupdate (op : Proto.op) : (Xupdate.t, string) result =
  match op with
  | Proto.Delete src -> Result.map (fun p -> Xupdate.Delete p) (parse_path src)
  | Proto.Insert { etype; attr; path } ->
      Result.map
        (fun p -> Xupdate.Insert { etype; attr; path = p })
        (parse_path path)

let rec ops_to_xupdates = function
  | [] -> Ok []
  | op :: rest ->
      Result.bind (op_to_xupdate op) (fun u ->
          Result.map (fun us -> u :: us) (ops_to_xupdates rest))

let selected_of t (r : Dag_eval.result) =
  let nodes =
    List.filteri (fun i _ -> i < t.cfg.max_listed) r.Dag_eval.selected_types
  in
  Proto.Selected { count = List.length r.Dag_eval.selected; nodes }

let handle_query t src =
  match parse_path src with
  | Error msg -> Proto.Error msg
  | Ok path -> (
      match t.cfg.read_mode with
      | `Snapshot ->
          (* lock-free: answer from the last published snapshot — never
             blocks behind the batcher's exclusive section *)
          Metrics.incr t.mtr "snapshot_queries";
          selected_of t (Engine.Snapshot.query t.published path)
      | `Locked ->
          Metrics.incr t.mtr "locked_queries";
          Rwlock.with_read t.lock (fun () ->
              selected_of t (Engine.query t.eng path)))

let handle_update t ~client ~req_seq ~epoch:req_epoch ~policy ops =
  match
    match fence_ahead t ~epoch:req_epoch with
    | Some _ as r -> r
    | None -> fence_stale t ~epoch:req_epoch
  with
  | Some refusal -> refusal
  | None ->
  if role t = `Replica then begin
    (* a definitive refusal, not a retryable Unavailable: retrying here
       can never succeed — the client must route the write to the
       primary (the reply names it when known) *)
    Metrics.incr t.mtr "fenced";
    Proto.Fenced { epoch = epoch t; leader = leader_hint t }
  end
  else
  match check_health t with
  | `Degraded reason ->
      Metrics.incr t.mtr "unavailable";
      Proto.Unavailable reason
  | `Ok -> (
      match ops_to_xupdates ops with
      | Error msg -> Proto.Error msg
      | Ok [] -> Proto.Error "empty update group"
      | Ok us -> (
          let origin = if client = "" then None else Some (client, req_seq) in
          match Batcher.submit_wait ?origin t.batcher ~policy us with
          | `Overloaded -> Proto.Overloaded
          | `Done (Batcher.Committed { seq; reports; delta_ops }) ->
              Proto.Applied { seq; reports; delta_ops }
          | `Done (Batcher.Rejected_at (i, rej)) ->
              Proto.Rejected
                { index = i; reason = Fmt.str "%a" Engine.pp_rejection rej }
          | `Done (Batcher.Failed msg) -> Proto.Error msg
          | `Done Batcher.Session_full ->
              (* dedup table full of recently-active clients: refuse the
                 new session loudly rather than evict a live one *)
              Proto.Overloaded
          | `Done (Batcher.Sync_failed msg) ->
              (* on_io_error already degraded the server; tell the client
                 the truth: not acknowledged, safe to retry *)
              Metrics.incr t.mtr "unavailable";
              Proto.Unavailable msg))

(* refresh the replication gauges just before a stats snapshot: the
   stream positions and per-follower lag/connection state, next to the
   latency histograms (ROADMAP: observable replication). Follower-side
   gauges (repl_after, repl_lag, …) are set by the follower loop. *)
let refresh_repl_gauges t =
  Metrics.set_gauge t.mtr "epoch" (epoch t);
  Metrics.set_gauge t.mtr "role"
    (match role t with `Primary -> 1 | `Replica -> 0);
  match t.feed with
  | None -> ()
  | Some feed ->
      Metrics.set_gauge t.mtr "repl_seq" (Repl_feed.seq feed);
      Metrics.set_gauge t.mtr "repl_head" (Repl_feed.head feed);
      List.iter
        (fun fs ->
          let g suffix v =
            Metrics.set_gauge t.mtr
              ("repl_follower_" ^ fs.Repl_feed.fs_name ^ "_" ^ suffix)
              v
          in
          g "after" fs.Repl_feed.fs_after;
          g "epoch" fs.Repl_feed.fs_epoch;
          g "lag" fs.Repl_feed.fs_lag;
          g "connected" (if fs.Repl_feed.fs_connected then 1 else 0);
          g "resets" fs.Repl_feed.fs_resets)
        (Repl_feed.followers feed)

let stats_reply t (st : Engine.stats) ~generation =
  refresh_repl_gauges t;
  let snap = Metrics.snapshot t.mtr in
  Proto.Stats_reply
    {
      Proto.st_nodes = st.Engine.n_nodes;
      st_edges = st.Engine.n_edges;
      st_m_size = st.Engine.m_size;
      st_l_size = st.Engine.l_size;
      st_occurrences = st.Engine.occurrences;
      st_generation = generation;
      st_wal_records = st.Engine.wal_records;
      st_health = health_string t;
      (* the query-cache and read-path counters ride in the generic
         counter list: no wire-format change, old clients simply show
         extra rows. The read counters are atomics, read live in either
         mode. *)
      st_counters =
        snap.Metrics.counters
        @ [
            ("cache_hits", st.Engine.cache_hits);
            ("cache_misses", st.Engine.cache_misses);
            ("cache_partials", st.Engine.cache_partials);
            ("cache_evictions", st.Engine.cache_evictions);
            ("live_reads", Atomic.get t.eng.Engine.live_reads);
            ("snapshot_reads", Atomic.get t.eng.Engine.snapshot_reads);
            ("lock_read_acquisitions", Rwlock.read_acquisitions t.lock);
            ("sat_skeleton_hits", st.Engine.sat_skeleton_hits);
            ("sat_skeleton_misses", st.Engine.sat_skeleton_misses);
            ("sat_learned_kept", st.Engine.sat_learned_kept);
            ("sat_warm_starts", st.Engine.sat_warm_starts);
          ];
      st_gauges = snap.Metrics.gauges;
      st_latencies = snap.Metrics.latencies;
    }

let handle_stats t =
  match t.cfg.read_mode with
  | `Snapshot ->
      (* lock-free: structural fields describe the published snapshot *)
      let s = t.published in
      Metrics.incr t.mtr "snapshot_stats";
      stats_reply t
        (Engine.Snapshot.stats s)
        ~generation:(Engine.Snapshot.generation s)
  | `Locked ->
      Rwlock.with_read t.lock (fun () ->
          stats_reply t (Engine.stats t.eng)
            ~generation:
              (Rxv_core.Eval_cache.generation t.eng.Engine.cache))

let handle_checkpoint t =
  match t.persist with
  | None -> Proto.Error "server has no durability directory"
  | Some p -> (
      match
        Rwlock.with_write t.lock (fun () ->
            Mutex.lock t.sync_m;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock t.sync_m)
              (fun () ->
                (* the dedup snapshot and commit counter must be read
                   under the same exclusive section as the image: a batch
                   committed between snapshot and checkpoint would be in
                   the image but missing from the new WAL's sessions
                   record, and its origin dies with the rotated-away old
                   generation — a recovered retry would re-apply it *)
                let sessions =
                  (* on a replica the batcher's counter is frozen at its
                     recovery value; the follower loop advances
                     [applied_seq] instead — take whichever is ahead *)
                  ( Dedup.snapshot t.dedup,
                    Stdlib.max (Batcher.seq t.batcher) t.applied_seq )
                in
                Persist.checkpoint ~sessions p t.eng))
      with
      | bytes ->
          Proto.Checkpointed { generation = Persist.generation p; bytes }
      | exception Unix.Unix_error (e, fn, arg) ->
          let msg = Printf.sprintf "%s(%s): %s" fn arg (Unix.error_message e) in
          degrade t ("checkpoint failed: " ^ msg);
          Proto.Error ("checkpoint failed: " ^ msg)
      | exception Sys_error msg ->
          degrade t ("checkpoint failed: " ^ msg);
          Proto.Error ("checkpoint failed: " ^ msg))

(* ---- replication stream (primary side) ---- *)

(* ship the current checkpoint image. Under the sync mutex: checkpoint
   rotation (which deletes superseded images) holds it too, so the file
   we read is never unlinked mid-read. *)
let reset_reply t p =
  Mutex.lock t.sync_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.sync_m)
    (fun () ->
      Metrics.incr t.mtr "repl_resets_served";
      let epoch = epoch t in
      match Persist.checkpoint_blob p with
      | Some (generation, base, bytes) ->
          (* ship the dedup table alongside the image: the recovered
             session set references commits the image already covers, so
             a follower promoted later still answers retries of requests
             acknowledged before this checkpoint *)
          let sessions =
            Some
              (Persist.encode_sessions_record
                 ~last_commit:(Persist.recovered_base p)
                 (Persist.recovered_sessions p))
          in
          Proto.Repl_reset
            { generation; base; ckpt = Some bytes; epoch; sessions }
      | None ->
          (* generation 0: no image exists — the follower re-initializes
             from the deterministic initial publication and replays from
             commit 0 *)
          Proto.Repl_reset
            { generation = 0; base = 0; ckpt = None; epoch; sessions = None }
      | exception (Sys_error msg | Failure msg) ->
          Proto.Error ("checkpoint unreadable: " ^ msg))

let handle_pull t ~follower ~after ~epoch:req_epoch ~max:max_n ~wait_ms =
  match fence_ahead t ~epoch:req_epoch with
  | Some refusal -> refusal
  | None -> (
      match (t.feed, t.persist) with
      | None, _ | _, None ->
          Proto.Error
            "replication unavailable: server has no durability directory"
      | Some feed, Some p -> (
          let my_epoch = epoch t in
          (* a stale-epoch puller gets its divergence boundary alongside
             the frames: the last commit its history provably shares
             with ours — it must repair before applying anything *)
          let boundary =
            if req_epoch >= my_epoch then None
            else Persist.boundary_for p ~for_epoch:req_epoch
          in
          let frames ~head records =
            Proto.Repl_frames
              { after; head; records; epoch = my_epoch; boundary }
          in
          let max_n = min (max 0 max_n) max_pull_records in
          match
            Repl_feed.pull ~epoch:req_epoch feed ~follower ~after ~max:max_n
              ~wait_ms
          with
          | `Frames (head, records) ->
              Metrics.add t.mtr "repl_records_streamed" (List.length records);
              frames ~head records
          | `Reset -> reset_reply t p
          | `Disk n -> (
              match Persist.read_group_tail p ~after ~max:n with
              | Ok records ->
                  Metrics.add t.mtr "repl_records_streamed"
                    (List.length records);
                  Metrics.incr t.mtr "repl_disk_reads";
                  frames ~head:(Repl_feed.head feed) records
              | Error (`Reset _) ->
                  (* rotation raced the pull; the checkpoint is newer
                     anyway *)
                  reset_reply t p)))

(* bounded-staleness read: wait (poll, like the feed's long-poll) until
   the published snapshot covers [min_seq], then answer from it *)
let handle_query_at t ~path ~min_seq ~wait_ms =
  let deadline = Unix.gettimeofday () +. (float_of_int wait_ms /. 1000.) in
  let rec await () =
    if t.applied_seq >= min_seq then handle_query t path
    else begin
      let stop = Mutex.lock t.m; let s = t.stopping in Mutex.unlock t.m; s in
      if stop || Unix.gettimeofday () >= deadline then begin
        Metrics.incr t.mtr "stale_read_redirects";
        Proto.Unavailable
          (Printf.sprintf "replica behind: have commit %d, need %d"
             t.applied_seq min_seq)
      end
      else begin
        Thread.delay 0.002;
        await ()
      end
    end
  in
  await ()

(* make everything appended so far durable and advance the feed's
   watermark — the batcher's per-batch sync, callable by the durable
   follower loop after each raw-appended batch *)
let sync_persist t =
  match t.persist with
  | None -> ()
  | Some p ->
      Mutex.lock t.sync_m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.sync_m)
        (fun () -> Persist.sync p);
      Metrics.incr t.mtr "wal_syncs";
      Option.iter Repl_feed.durable t.feed

(* ---- failover: promotion ---- *)

let promote t =
  Mutex.lock t.promote_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.promote_m)
    (fun () ->
      if role t = `Primary then ((* idempotent *) epoch t, Batcher.seq t.batcher)
      else begin
        (* 1. stop applying replicated records: the hook joins the
           follower loop, freezing [applied_seq] as the last commit of
           the old epoch *)
        (match t.promote_hook with Some h -> h () | None -> ());
        let boundary = t.applied_seq in
        Mutex.lock t.m;
        t.epoch_ <- t.epoch_ + 1;
        let new_epoch = t.epoch_ in
        Mutex.unlock t.m;
        (* 2. durably record the transition BEFORE the first write of
           the new epoch can be accepted: a crash right after recovers a
           node that still knows it owns [new_epoch], and a deposed
           ex-primary rejoining later finds the truncation boundary *)
        (match t.persist with
        | Some p ->
            Mutex.lock t.sync_m;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock t.sync_m)
              (fun () ->
                Persist.append_epoch p ~epoch:new_epoch ~boundary;
                (* a follower runs without the engine WAL hook (it logs
                   the primary's bytes verbatim instead); from here on
                   this node's own commits must be logged *)
                Persist.attach ~deferred_sync:true p t.eng)
        | None -> ());
        (* 3. continue the replicated commit numbering *)
        Batcher.set_seq t.batcher boundary;
        Mutex.lock t.m;
        t.role <- `Primary;
        t.leader_hint <- "";
        Mutex.unlock t.m;
        Metrics.incr t.mtr "promotions";
        Log.info (fun m ->
            m "promoted to primary: epoch %d, first commit will be %d"
              new_epoch (boundary + 1));
        (new_epoch, boundary)
      end)

let kind_of_request = function
  | Proto.Ping -> "ping"
  | Proto.Query _ -> "query"
  | Proto.Update _ -> "update"
  | Proto.Stats -> "stats"
  | Proto.Checkpoint -> "checkpoint"
  | Proto.Shutdown -> "shutdown"
  | Proto.Repl_hello _ -> "repl_hello"
  | Proto.Repl_pull _ -> "repl_pull"
  | Proto.Query_at _ -> "query_at"
  | Proto.Promote -> "promote"

(* serve one connection until EOF, corruption, socket death, or
   shutdown. Any I/O failure here — EPIPE from a vanished peer,
   ECONNRESET, an injected EIO — costs exactly this connection. *)
let handler t fd conn_id =
  let stop_conn = ref false in
  let conn_dead reason =
    Metrics.incr t.mtr "conn_io_errors";
    Log.info (fun m -> m "conn %d: %s" conn_id reason);
    stop_conn := true
  in
  while not !stop_conn do
    match Proto.recv ~fp:"srv.read" fd with
    | exception Unix.Unix_error (e, _, _) ->
        conn_dead ("read failed: " ^ Unix.error_message e)
    | `Eof -> stop_conn := true
    | `Corrupt reason ->
        (* transport-level damage: this stream has no recoverable
           framing left — report (best-effort) and drop the connection;
           the server and every other connection are unaffected *)
        Metrics.incr t.mtr "proto_errors";
        Log.info (fun m -> m "conn %d: corrupt frame: %s" conn_id reason);
        (try Proto.send fd (Proto.encode_response (Proto.Error reason))
         with Unix.Unix_error _ -> ());
        stop_conn := true
    | `Msg payload -> (
        match Proto.decode_request payload with
        | exception Codec.Error reason ->
            (* framed correctly but not a request we understand: same
               clean per-connection failure *)
            Metrics.incr t.mtr "proto_errors";
            Log.info (fun m -> m "conn %d: bad request: %s" conn_id reason);
            (try Proto.send fd (Proto.encode_response (Proto.Error reason))
             with Unix.Unix_error _ -> ());
            stop_conn := true
        | req ->
            Metrics.incr t.mtr "requests";
            let t0 = Unix.gettimeofday () in
            let resp =
              match req with
              | Proto.Ping -> Proto.Pong
              | Proto.Query src -> handle_query t src
              | Proto.Update { client; req_seq; epoch; policy; ops } ->
                  handle_update t ~client ~req_seq ~epoch ~policy ops
              | Proto.Stats -> handle_stats t
              | Proto.Checkpoint -> handle_checkpoint t
              | Proto.Shutdown -> Proto.Bye
              | Proto.Repl_hello { follower; after; epoch } ->
                  (* registration + head probe: a zero-record pull *)
                  handle_pull t ~follower ~after ~epoch ~max:0 ~wait_ms:0
              | Proto.Repl_pull { follower; after; max; wait_ms; epoch } ->
                  handle_pull t ~follower ~after ~epoch ~max ~wait_ms
              | Proto.Query_at { path; min_seq; wait_ms } ->
                  handle_query_at t ~path ~min_seq ~wait_ms
              | Proto.Promote ->
                  let epoch, seq = promote t in
                  Proto.Promoted { epoch; seq }
            in
            Metrics.record t.mtr (kind_of_request req)
              (Unix.gettimeofday () -. t0);
            (try Proto.send ~fp:"srv.write" fd (Proto.encode_response resp)
             with Unix.Unix_error (e, _, _) ->
               conn_dead ("write failed: " ^ Unix.error_message e));
            if req = Proto.Shutdown then begin
              stop_conn := true;
              (* wake the accept loop; the caller of [wait] finishes the
                 teardown — this thread must not join itself *)
              Mutex.lock t.m;
              t.stopping <- true;
              Mutex.unlock t.m;
              ignore (Unix.write t.stop_wr (Bytes.of_string "x") 0 1)
            end)
  done;
  forget_conn t conn_id;
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ---- accept loop ---- *)

let accept_loop t =
  let rec loop () =
    let stop_now = Mutex.lock t.m; let s = t.stopping in Mutex.unlock t.m; s in
    if not stop_now then begin
      match Unix.select [ t.listen_fd; t.stop_rd ] [] [] (-1.0) with
      | readable, _, _ ->
          if List.mem t.stop_rd readable then () (* stop requested *)
          else if List.mem t.listen_fd readable then begin
            match
              Io.hit "srv.accept";
              Unix.accept t.listen_fd
            with
            | fd, _ ->
                Metrics.incr t.mtr "connections";
                let id = register_conn t fd in
                let th = Thread.create (fun () -> handler t fd id) () in
                Mutex.lock t.m;
                t.handlers <- th :: t.handlers;
                Mutex.unlock t.m;
                loop ()
            | exception Unix.Unix_error ((Unix.ECONNABORTED | Unix.EINTR), _, _)
              ->
                loop ()
            | exception Unix.Unix_error (e, _, _) ->
                (* EMFILE, ENFILE, injected EIO, …: losing one accept
                   must not kill the listener — note it and go on *)
                Metrics.incr t.mtr "accept_errors";
                Log.warn (fun m -> m "accept: %s" (Unix.error_message e));
                Thread.delay 0.01;
                loop ()
          end
          else loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ()

(* ---- lifecycle ---- *)

let bind_listen = function
  | Unix_sock path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let addr = Unix.inet_addr_of_string host in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

let start ?(config = default_config) ?persist addr eng =
  (* a peer that vanishes mid-reply must cost one connection, not the
     process: writes to a closed socket should fail with EPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd = bind_listen addr in
  let stop_rd, stop_wr = Unix.pipe () in
  let lock = Rwlock.create () in
  let mtr = Metrics.create () in
  let sync_m = Mutex.create () in
  (match persist with
  | Some p when config.role = `Primary ->
      Persist.attach ~deferred_sync:true p eng
  | Some _ ->
      (* a durable replica logs the primary's records verbatim
         (Persist.append_raw) through its follower loop; the engine hook
         would re-encode them with local stamps, so it stays detached
         until promotion *)
      ()
  | None -> ());
  (* the replication feed shadows the WAL: the persist tap appends each
     committed record (inside the batcher's exclusive section, so in
     commit order), and every successful sync advances the durable
     watermark pullers are allowed to see *)
  let feed =
    match persist with
    | Some p ->
        let f =
          Repl_feed.create ~generation:(Persist.generation p)
            ~base:(Persist.recovered_base p)
            ~last:(Persist.recovered_last_commit p) ()
        in
        Persist.set_tap p
          (Some
             {
               Persist.on_group = Repl_feed.append f;
               on_rotate =
                 (fun ~generation ~base -> Repl_feed.rotate f ~generation ~base);
               on_reset =
                 (fun ~generation ~base -> Repl_feed.reset f ~generation ~base);
             });
        Some f
    | None -> None
  in
  let sync =
    match persist with
    | Some p ->
        fun () ->
          Mutex.lock sync_m;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock sync_m)
            (fun () -> Persist.sync p);
          Metrics.incr mtr "wal_syncs";
          Option.iter Repl_feed.durable feed
    | None -> fun () -> ()
  in
  (* the server's dedup table and commit counter continue where the WAL
     left off: a client retrying across our crash gets its original
     answer, not a second application *)
  let dedup = Dedup.create ~cap:config.max_sessions () in
  let initial_seq =
    match persist with
    | Some p ->
        Dedup.load dedup (Persist.recovered_sessions p);
        Persist.recovered_last_commit p
    | None -> 0
  in
  let origin_hook =
    match persist with Some p -> Persist.set_origin p | None -> fun _ -> ()
  in
  (* the batcher reports durability failures and publishes snapshots
     before [t] exists *)
  let degrade_cell = ref (fun (_ : string) -> ()) in
  let publish_cell = ref (fun () -> ()) in
  let batcher =
    Batcher.create ~queue_cap:config.queue_cap ~batch_cap:config.batch_cap
      ~lock ~metrics:mtr ~sync ~dedup ~origin_hook
      ~on_io_error:(fun msg -> !degrade_cell msg)
      ~publish:(fun () -> !publish_cell ())
      ~initial_seq eng
  in
  let t =
    {
      cfg = config;
      eng;
      persist;
      lock;
      mtr;
      batcher;
      dedup;
      addr;
      listen_fd;
      stop_rd;
      stop_wr;
      m = Mutex.create ();
      sync_m;
      health = `Ok;
      last_probe = 0.;
      role = config.role;
      epoch_ = (match persist with Some p -> Persist.epoch p | None -> 0);
      leader_hint = "";
      promote_hook = None;
      promote_m = Mutex.create ();
      stopping = false;
      conns = [];
      handlers = [];
      conn_ids = 0;
      accept_thread = None;
      published = Engine.Snapshot.capture eng;
      applied_seq = initial_seq;
      feed;
    }
  in
  degrade_cell := degrade t;
  publish_cell :=
    (fun () ->
      t.published <- Engine.Snapshot.capture eng;
      (* runs inside the batch's exclusive section: the batcher's seq is
         exactly the last commit the fresh snapshot covers *)
      t.applied_seq <- Batcher.seq t.batcher;
      Metrics.incr mtr "snapshots_published");
  t.accept_thread <- Some (Thread.create accept_loop t);
  Log.info (fun m ->
      m "serving %s"
        (match addr with
        | Unix_sock p -> "unix:" ^ p
        | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p));
  t

let initiate_stop t =
  Mutex.lock t.m;
  let first = not t.stopping in
  t.stopping <- true;
  Mutex.unlock t.m;
  if first then ignore (Unix.write t.stop_wr (Bytes.of_string "x") 0 1)

let wait t =
  (match t.accept_thread with
  | Some th ->
      Thread.join th;
      t.accept_thread <- None
  | None -> ());
  (* unpark handlers long-polling the feed or a Query_at gate *)
  Option.iter Repl_feed.stop t.feed;
  (* wake handlers blocked in read: shutdown (not close) interrupts a
     blocked reader with EOF on every platform we target *)
  Mutex.lock t.m;
  let conns = t.conns and handlers = t.handlers in
  t.handlers <- [];
  Mutex.unlock t.m;
  List.iter
    (fun (_, fd) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter Thread.join handlers;
  Batcher.stop t.batcher;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_rd with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_wr with Unix.Unix_error _ -> ());
  (match t.addr with
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  Log.info (fun m -> m "server stopped (%d commits)" (Batcher.seq t.batcher))

let stop t =
  initiate_stop t;
  wait t
