(** Retrying client wrapper: reconnects and re-sends with a stable
    identity, so every retry of an update carries the same
    [(client_id, req_seq)] and the server's dedup table guarantees
    exactly-once application. *)

module Rng = Rxv_sat.Rng

type target = Unix_path of string | Tcp of string * int

type t = {
  target : target;
  t_client_id : string;
  timeout : float option;
  max_attempts : int;
  rng : Rng.t;
  mutable conn : Client.t option;
  mutable next_seq : int;
  mutable n_reconnects : int;
  mutable n_retries : int;
  mutable closed : bool;
}

let create ?client_id ?(timeout = 5.0) ?(max_attempts = 12) ?(seed = 0) target
    =
  {
    target;
    t_client_id =
      (match client_id with Some id -> id | None -> Client.fresh_id ());
    timeout = (if timeout <= 0. then None else Some timeout);
    max_attempts = max 1 max_attempts;
    rng = Rng.create (0x5EED lxor seed);
    conn = None;
    next_seq = 1;
    n_reconnects = 0;
    n_retries = 0;
    closed = false;
  }

let client_id t = t.t_client_id
let reconnects t = t.n_reconnects
let retries t = t.n_retries

(* capped exponential backoff with multiplicative jitter: attempt [k]
   sleeps in [half, full] of [2^k * 5 ms], capped at 250 ms — jitter
   decorrelates a swarm of clients all retrying against the same
   recovering server *)
let backoff t k =
  let full = min 0.25 (0.005 *. (2. ** float_of_int (min k 6))) in
  let frac = 0.5 +. (0.5 *. Rng.float t.rng) in
  Thread.delay (full *. frac)

let drop_conn t =
  (match t.conn with Some c -> Client.close c | None -> ());
  t.conn <- None

let conn t =
  match t.conn with
  | Some c -> c
  | None ->
      let c =
        match t.target with
        | Unix_path p ->
            Client.connect ~client_id:t.t_client_id ?rcv_timeout:t.timeout p
        | Tcp (host, port) ->
            Client.connect_tcp ~client_id:t.t_client_id
              ?rcv_timeout:t.timeout host port
      in
      t.n_reconnects <- t.n_reconnects + 1;
      t.conn <- Some c;
      c

let close t =
  t.closed <- true;
  drop_conn t

(* Run [f conn] with reconnect-and-retry. [f] must be safe to repeat —
   updates are, because they always re-send the same req_seq. *)
let with_retries t ~give_up f =
  let rec go k last =
    if t.closed then give_up "client closed"
    else if k >= t.max_attempts then give_up last
    else begin
      if k > 0 then begin
        t.n_retries <- t.n_retries + 1;
        backoff t (k - 1)
      end;
      match f (conn t) with
      | `Retry reason ->
          drop_conn t;
          go (k + 1) reason
      | `Soft_retry reason ->
          (* the connection is fine; the server just told us to back off *)
          go (k + 1) reason
      | `Done r -> r
      | exception Client.Disconnected reason ->
          drop_conn t;
          go (k + 1) reason
      | exception Unix.Unix_error (e, _, _) ->
          drop_conn t;
          go (k + 1) (Unix.error_message e)
    end
  in
  go 0 "unattempted"

let update ?(policy = `Proceed) t ops =
  (* the sequence number is fixed ONCE per logical request; every wire
     retry below re-sends it, which is what makes retry safe *)
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  with_retries t
    ~give_up:(fun last ->
      `Error (Printf.sprintf "retries exhausted (%s)" last))
    (fun c ->
      match Client.update ~policy ~req_seq:seq c ops with
      | `Applied _ as r -> `Done r
      | `Rejected _ as r -> `Done r
      | `Error _ as r -> `Done r
      | `Overloaded -> `Soft_retry "overloaded"
      | `Unavailable reason -> `Soft_retry ("unavailable: " ^ reason))

let query t src =
  with_retries t
    ~give_up:(fun last ->
      Error (Printf.sprintf "retries exhausted (%s)" last))
    (fun c ->
      match Client.query c src with
      | Ok _ as r -> `Done r
      | Error _ as r -> `Done r)

let stats t =
  with_retries t
    ~give_up:(fun last ->
      Error (Printf.sprintf "retries exhausted (%s)" last))
    (fun c ->
      match Client.stats c with
      | Ok _ as r -> `Done r
      | Error _ as r -> `Done r)

let query_at t ~min_seq ~wait_ms src =
  with_retries t
    ~give_up:(fun last ->
      Error (`Err (Printf.sprintf "retries exhausted (%s)" last)))
    (fun c ->
      match Client.query_at c ~min_seq ~wait_ms src with
      | Ok _ as r -> `Done r
      (* [`Behind] is definitive FOR THIS SERVER — retrying the same
         lagging replica would just burn the wait budget again; the
         router redirects instead *)
      | Error (`Behind _) as r -> `Done r
      | Error (`Err _) as r -> `Done r)

module Router = struct
  type conn = t

  type nonrec t = {
    primary : conn;
    replicas : conn array;
    wait_ms : int;
    mutable pin : int;
    mutable rr : int;
    mutable n_replica : int;
    mutable n_primary : int;
    mutable n_redirects : int;
  }

  let create ?client_id ?timeout ?max_attempts ?(seed = 0) ?(wait_ms = 200)
      ~primary replicas =
    let mk i target =
      create ?client_id ?timeout ?max_attempts ~seed:(seed + i) target
    in
    {
      primary = mk 0 primary;
      replicas = Array.of_list (List.mapi (fun i r -> mk (i + 1) r) replicas);
      wait_ms;
      pin = 0;
      rr = 0;
      n_replica = 0;
      n_primary = 0;
      n_redirects = 0;
    }

  let pin t = t.pin
  let reads_replica t = t.n_replica
  let reads_primary t = t.n_primary
  let redirects t = t.n_redirects

  let update ?policy t ops =
    let r = update ?policy t.primary ops in
    (* read-your-writes: every later routed read must cover this commit *)
    (match r with
    | `Applied (seq, _) -> if seq > t.pin then t.pin <- seq
    | `Rejected _ | `Error _ -> ());
    r

  let query t src =
    let n = Array.length t.replicas in
    let rec go k =
      if k >= n then begin
        (* every replica was behind (or errored): the primary's published
           snapshot always covers its own commits, so it is never stale *)
        if n > 0 then t.n_redirects <- t.n_redirects + 1;
        t.n_primary <- t.n_primary + 1;
        query t.primary src
      end
      else begin
        let i = (t.rr + k) mod n in
        match query_at t.replicas.(i) ~min_seq:t.pin ~wait_ms:t.wait_ms src with
        | Ok _ as r ->
            t.rr <- (i + 1) mod n;
            t.n_replica <- t.n_replica + 1;
            r
        | Error (`Behind _) | Error (`Err _) -> go (k + 1)
      end
    in
    go 0

  let close t =
    close t.primary;
    Array.iter close t.replicas
end
