(** Retrying client wrapper: reconnects and re-sends with a stable
    identity, so every retry of an update carries the same
    [(client_id, req_seq)] and the server's dedup table guarantees
    exactly-once application. *)

module Rng = Rxv_sat.Rng

type target = Unix_path of string | Tcp of string * int

type t = {
  target : target;
  t_client_id : string;
  timeout : float option;
  max_attempts : int;
  connect_retries : int;
  rng : Rng.t;
  mutable conn : Client.t option;
  mutable next_seq : int;
  mutable n_reconnects : int;
  mutable n_retries : int;
  mutable closed : bool;
}

let create ?client_id ?(timeout = 5.0) ?(max_attempts = 12)
    ?(connect_retries = 60) ?(seed = 0) target =
  {
    target;
    t_client_id =
      (match client_id with Some id -> id | None -> Client.fresh_id ());
    timeout = (if timeout <= 0. then None else Some timeout);
    max_attempts = max 1 max_attempts;
    connect_retries = max 0 connect_retries;
    rng = Rng.create (0x5EED lxor seed);
    conn = None;
    next_seq = 1;
    n_reconnects = 0;
    n_retries = 0;
    closed = false;
  }

let client_id t = t.t_client_id
let reconnects t = t.n_reconnects
let retries t = t.n_retries

(* capped exponential backoff with multiplicative jitter: attempt [k]
   sleeps in [half, full] of [2^k * 5 ms], capped at 250 ms — jitter
   decorrelates a swarm of clients all retrying against the same
   recovering server *)
let backoff t k =
  let full = min 0.25 (0.005 *. (2. ** float_of_int (min k 6))) in
  let frac = 0.5 +. (0.5 *. Rng.float t.rng) in
  Thread.delay (full *. frac)

let drop_conn t =
  (match t.conn with Some c -> Client.close c | None -> ());
  t.conn <- None

let conn t =
  match t.conn with
  | Some c -> c
  | None ->
      let c =
        match t.target with
        | Unix_path p ->
            Client.connect ~retries:t.connect_retries
              ~client_id:t.t_client_id ?rcv_timeout:t.timeout p
        | Tcp (host, port) ->
            Client.connect_tcp ~retries:t.connect_retries
              ~client_id:t.t_client_id ?rcv_timeout:t.timeout host port
      in
      t.n_reconnects <- t.n_reconnects + 1;
      t.conn <- Some c;
      c

let close t =
  t.closed <- true;
  drop_conn t

(* Run [f conn] with reconnect-and-retry. [f] must be safe to repeat —
   updates are, because they always re-send the same req_seq. *)
let with_retries t ~give_up f =
  let rec go k last =
    if t.closed then give_up "client closed"
    else if k >= t.max_attempts then give_up last
    else begin
      if k > 0 then begin
        t.n_retries <- t.n_retries + 1;
        backoff t (k - 1)
      end;
      match f (conn t) with
      | `Retry reason ->
          drop_conn t;
          go (k + 1) reason
      | `Soft_retry reason ->
          (* the connection is fine; the server just told us to back off *)
          go (k + 1) reason
      | `Done r -> r
      | exception Client.Disconnected reason ->
          drop_conn t;
          go (k + 1) reason
      | exception Unix.Unix_error (e, _, _) ->
          drop_conn t;
          go (k + 1) (Unix.error_message e)
    end
  in
  go 0 "unattempted"

(* One wire-retried update with a {e caller-owned} sequence number: the
   router re-sends an in-flight write against successive candidates
   after a failover under the same [(client_id, req_seq)], so whichever
   primary (old or new) committed it first, the dedup table answers the
   rest — exactly-once across promotion. [`Fenced] is definitive for
   this node: retrying it can never succeed at our epoch. *)
let update_as ?(policy = `Proceed) ?(epoch = 0) ~req_seq t ops =
  with_retries t
    ~give_up:(fun last ->
      `Error (Printf.sprintf "retries exhausted (%s)" last))
    (fun c ->
      match Client.update ~policy ~req_seq ~epoch c ops with
      | `Applied _ as r -> `Done r
      | `Rejected _ as r -> `Done r
      | `Error _ as r -> `Done r
      | `Fenced _ as r -> `Done r
      | `Overloaded -> `Soft_retry "overloaded"
      | `Unavailable reason -> `Soft_retry ("unavailable: " ^ reason))

let update ?(policy = `Proceed) t ops =
  (* the sequence number is fixed ONCE per logical request; every wire
     retry below re-sends it, which is what makes retry safe *)
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  match update_as ~policy ~req_seq:seq t ops with
  | (`Applied _ | `Rejected _ | `Error _) as r -> r
  | `Fenced (e, leader) ->
      `Error
        (Printf.sprintf "fenced: a newer primary exists (epoch %d%s)" e
           (if leader = "" then "" else ", at " ^ leader))

let query t src =
  with_retries t
    ~give_up:(fun last ->
      Error (Printf.sprintf "retries exhausted (%s)" last))
    (fun c ->
      match Client.query c src with
      | Ok _ as r -> `Done r
      | Error _ as r -> `Done r)

let stats t =
  with_retries t
    ~give_up:(fun last ->
      Error (Printf.sprintf "retries exhausted (%s)" last))
    (fun c ->
      match Client.stats c with
      | Ok _ as r -> `Done r
      | Error _ as r -> `Done r)

let query_at t ~min_seq ~wait_ms src =
  with_retries t
    ~give_up:(fun last ->
      Error (`Err (Printf.sprintf "retries exhausted (%s)" last)))
    (fun c ->
      match Client.query_at c ~min_seq ~wait_ms src with
      | Ok _ as r -> `Done r
      (* [`Behind] is definitive FOR THIS SERVER — retrying the same
         lagging replica would just burn the wait budget again; the
         router redirects instead *)
      | Error (`Behind _) as r -> `Done r
      | Error (`Err _) as r -> `Done r)

module Router = struct
  type conn = t

  let target_name = function
    | Unix_path p -> "unix:" ^ p
    | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

  type nonrec t = {
    candidates : conn array;
        (* every node of the cluster, [0] the configured primary; any of
           them may be (or become) the primary, all share one client
           identity so dedup state is portable across failover *)
    names : string array;  (* target_name per candidate, for leader hints *)
    wait_ms : int;
    failover_timeout : float;
    mutable primary_ix : int;  (* candidate currently believed primary *)
    mutable epoch_seen : int;  (* highest epoch witnessed, stamps writes *)
    mutable next_seq : int;  (* router-owned request sequence *)
    mutable pin : int;
    mutable rr : int;
    mutable n_replica : int;
    mutable n_primary : int;
    mutable n_redirects : int;
    mutable n_failovers : int;
    alive : bool array;  (* per-candidate read-path health *)
    fails : int array;  (* consecutive transport failures *)
    probe_at : float array;  (* when a dead candidate may be probed *)
  }

  let create ?client_id ?timeout ?max_attempts ?(seed = 0) ?(wait_ms = 200)
      ?(failover_timeout = 10.) ~primary replicas =
    (* ONE identity across every candidate: a write re-sent to the
       promoted primary after a failover must dedup against what the old
       primary may already have committed and replicated *)
    let client_id =
      match client_id with Some id -> id | None -> Client.fresh_id ()
    in
    (* short per-candidate budgets: the failover sweep below is the real
       retry policy, and a dead candidate must cost milliseconds *)
    let max_attempts = Option.value max_attempts ~default:2 in
    let targets = Array.of_list (primary :: replicas) in
    let n = Array.length targets in
    {
      candidates =
        Array.mapi
          (fun i tg ->
            create ~client_id ?timeout ~max_attempts ~connect_retries:3
              ~seed:(seed + i) tg)
          targets;
      names = Array.map target_name targets;
      wait_ms;
      failover_timeout;
      primary_ix = 0;
      epoch_seen = 0;
      next_seq = 1;
      pin = 0;
      rr = 0;
      n_replica = 0;
      n_primary = 0;
      n_redirects = 0;
      n_failovers = 0;
      alive = Array.make n true;
      fails = Array.make n 0;
      probe_at = Array.make n 0.;
    }

  let pin t = t.pin
  let reads_replica t = t.n_replica
  let reads_primary t = t.n_primary
  let redirects t = t.n_redirects
  let failovers t = t.n_failovers
  let epoch_seen t = t.epoch_seen
  let primary_index t = t.primary_ix

  (* ---- per-candidate read health ---- *)

  (* doubling probe backoff, 50 ms to a 2 s ceiling: a dead replica is
     skipped by routed reads, but probed again on this timer so it
     rejoins the rotation when it comes back *)
  let probe_backoff k =
    Stdlib.min 2.0 (0.05 *. (2. ** float_of_int (Stdlib.min k 5)))

  let mark_dead t i =
    t.alive.(i) <- false;
    t.fails.(i) <- t.fails.(i) + 1;
    t.probe_at.(i) <- Unix.gettimeofday () +. probe_backoff t.fails.(i)

  let mark_alive t i =
    t.alive.(i) <- true;
    t.fails.(i) <- 0

  let dead_replicas t =
    let n = ref 0 in
    Array.iteri
      (fun i a -> if (not a) && i <> t.primary_ix then incr n)
      t.alive;
    !n

  (* ---- failover ---- *)

  (* the Applied reply carries no epoch, so after adopting a new primary
     ask its stats gauges once — future writes stamped with that epoch
     can never be acknowledged by the deposed one *)
  let probe_epoch t i =
    match stats t.candidates.(i) with
    | Ok st -> (
        match List.assoc_opt "epoch" st.Proto.st_gauges with
        | Some e when e > t.epoch_seen -> t.epoch_seen <- e
        | _ -> ())
    | Error _ -> ()

  let ix_of_leader t leader =
    if leader = "" then None
    else
      let found = ref None in
      Array.iteri
        (fun i n -> if !found = None && n = leader then found := Some i)
        t.names;
      !found

  let adopt_primary t i =
    if i <> t.primary_ix then begin
      t.primary_ix <- i;
      t.n_failovers <- t.n_failovers + 1;
      probe_epoch t i
    end

  let update ?policy t ops =
    (* one sequence number per logical request, owned by the router and
       re-sent verbatim to every candidate tried — see [update_as] *)
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let n = Array.length t.candidates in
    let deadline = Unix.gettimeofday () +. t.failover_timeout in
    let pace tried =
      (* finished a full sweep without a writable primary: breathe so a
         promotion in progress can land instead of being hammered *)
      if tried > 0 && tried mod n = 0 then Thread.delay 0.01
    in
    let rec go i tried last =
      if tried > 0 && Unix.gettimeofday () > deadline then
        `Error (Printf.sprintf "failover: no writable primary (%s)" last)
      else
        match
          update_as ?policy ~epoch:t.epoch_seen ~req_seq:seq t.candidates.(i)
            ops
        with
        | (`Applied _ | `Rejected _) as r ->
            adopt_primary t i;
            mark_alive t i;
            (match r with
            | `Applied (s, _) -> if s > t.pin then t.pin <- s
            | _ -> ());
            r
        | `Fenced (e, leader) ->
            if e > t.epoch_seen then begin
              (* OUR stamp was stale, not necessarily the node: adopt the
                 epoch and retry the same candidate once at it — it may
                 be the real primary fencing an out-of-date router *)
              t.epoch_seen <- e;
              go i tried (Printf.sprintf "fenced (epoch %d)" e)
            end
            else begin
              let next =
                match ix_of_leader t leader with
                | Some j when j <> i -> j
                | _ -> (i + 1) mod n
              in
              pace (tried + 1);
              go next (tried + 1) (Printf.sprintf "fenced (epoch %d)" e)
            end
        | `Error reason ->
            mark_dead t i;
            pace (tried + 1);
            go ((i + 1) mod n) (tried + 1) reason
    in
    go t.primary_ix 0 "unattempted"

  let query t src =
    let n = Array.length t.candidates in
    let now = Unix.gettimeofday () in
    (* candidates other than the current primary, in round-robin order,
       live ones (or dead ones whose probe timer expired) only *)
    let order =
      List.init n (fun k -> (t.rr + k) mod n)
      |> List.filter (fun i ->
             i <> t.primary_ix
             && (t.alive.(i) || now >= t.probe_at.(i)))
    in
    let rec go = function
      | [] ->
          (* every replica was behind, dead, or errored: the primary's
             published snapshot always covers its own commits, so it is
             never stale *)
          if n > 1 then t.n_redirects <- t.n_redirects + 1;
          t.n_primary <- t.n_primary + 1;
          query t.candidates.(t.primary_ix) src
      | i :: rest -> (
          match
            query_at t.candidates.(i) ~min_seq:t.pin ~wait_ms:t.wait_ms src
          with
          | Ok _ as r ->
              mark_alive t i;
              t.rr <- (i + 1) mod n;
              t.n_replica <- t.n_replica + 1;
              r
          | Error (`Behind _) ->
              (* reachable, just lagging: healthy for liveness purposes *)
              mark_alive t i;
              go rest
          | Error (`Err _) ->
              mark_dead t i;
              go rest)
    in
    go order

  let close t = Array.iter close t.candidates
end
