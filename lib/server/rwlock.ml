(** Readers-writer lock with batch-fair admission. *)

type t = {
  m : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  readers : int Atomic.t;  (* holders in shared mode *)
  mutable writer : bool;  (* a holder in exclusive mode *)
  mutable waiting_writers : int;
  mutable waiting_readers : int;
  mutable reader_tokens : int;
      (* admissions issued at the last write-phase exit: readers that
         queued during the phase may enter even though another writer is
         already waiting; each entry consumes one token, so the next
         write phase starts only after that cohort has been served *)
  read_acquisitions : int Atomic.t;
      (* cumulative shared-mode acquisitions, for stats *)
}

let create () =
  {
    m = Mutex.create ();
    can_read = Condition.create ();
    can_write = Condition.create ();
    readers = Atomic.make 0;
    writer = false;
    waiting_writers = 0;
    waiting_readers = 0;
    reader_tokens = 0;
    read_acquisitions = Atomic.make 0;
  }

let read_lock t =
  Mutex.lock t.m;
  while t.writer || (t.waiting_writers > 0 && t.reader_tokens = 0) do
    t.waiting_readers <- t.waiting_readers + 1;
    Condition.wait t.can_read t.m;
    t.waiting_readers <- t.waiting_readers - 1
  done;
  if t.reader_tokens > 0 then t.reader_tokens <- t.reader_tokens - 1;
  Atomic.incr t.readers;
  Atomic.incr t.read_acquisitions;
  Mutex.unlock t.m

let read_unlock t =
  Mutex.lock t.m;
  Atomic.decr t.readers;
  if Atomic.get t.readers = 0 then Condition.signal t.can_write;
  Mutex.unlock t.m

let write_lock t =
  Mutex.lock t.m;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || Atomic.get t.readers > 0 || t.reader_tokens > 0 do
    Condition.wait t.can_write t.m
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.m

let write_unlock t =
  Mutex.lock t.m;
  t.writer <- false;
  (* admit the readers this write phase kept out before the next phase *)
  t.reader_tokens <- t.waiting_readers;
  Condition.broadcast t.can_read;
  Condition.signal t.can_write;
  Mutex.unlock t.m

let with_read t f =
  read_lock t;
  Fun.protect ~finally:(fun () -> read_unlock t) f

let with_write t f =
  write_lock t;
  Fun.protect ~finally:(fun () -> write_unlock t) f

let readers t = Atomic.get t.readers
let read_acquisitions t = Atomic.get t.read_acquisitions
