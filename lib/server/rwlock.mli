(** A readers-writer lock with batch-fair admission.

    Readers share the lock; a writer excludes everyone. Acquisition is
    writer-preferring (a waiting writer blocks {e new} readers, so a
    steady read stream cannot starve the single group-commit writer),
    but with one fairness twist: when a writer releases, every reader
    that queued during that write phase is admitted {e before} the next
    write phase begins. Under a saturated update queue the write lock is
    re-taken batch after batch; without the admission rule those readers
    would wait forever.

    Built on [Mutex]/[Condition] from [threads.posix] only, so it
    behaves identically on OCaml 4.14 and 5.x runtimes. *)

type t

val create : unit -> t

val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

val with_read : t -> (unit -> 'a) -> 'a
(** run [f] holding the lock in shared mode; always released *)

val with_write : t -> (unit -> 'a) -> 'a
(** run [f] holding the lock exclusively; always released *)

val readers : t -> int
(** readers currently holding the lock. Backed by an [Atomic.t], so a
    stats thread reading it without the internal mutex sees an exact
    (if instantly stale) count — not the torn value the old plain-field
    "racy snapshot" could return. *)

val read_acquisitions : t -> int
(** cumulative shared-mode acquisitions since {!create} — the
    denominator for lock-contention stats (how many reads paid for the
    lock at all, versus the engine's lock-free snapshot reads) *)
