(** The exactly-once dedup table: one entry per client, remembering the
    last acknowledged request and what it committed as.

    The protocol is NFSv4-session-shaped: a client sends strictly
    increasing [req_seq] numbers and retries a request with the {e same}
    number, so the server only needs the latest entry per client — a
    retry of anything older than the last acknowledged request can only
    come from a broken client and is rejected as stale.

    The table is bounded by [cap], but a live client's entry is never
    silently dropped to make room: {!admit} only evicts entries that
    have been silent for at least [min_age] (a client that long past its
    last acknowledgment has abandoned its retries) and otherwise refuses
    the new session, which the server surfaces as a retryable
    [Overloaded] — an exactly-once hole under load would be quiet;
    backpressure is loud.

    The table itself is not separately persisted; it is reconstructed
    from the WAL (each committed group's record carries its origin, and
    checkpoint rotation snapshots the whole table into the fresh log —
    see {!Rxv_persist.Persist}). This module is the in-memory half. *)

type t

val create : ?cap:int -> ?min_age:float -> unit -> t
(** [cap] (default 1024) bounds the table; [min_age] (default 60 s) is
    how long an entry must have gone unacknowledged before {!admit} may
    evict it for a new client *)

val check :
  t ->
  client:string ->
  seq:int ->
  [ `Fresh | `Duplicate of int * int * int | `Stale ]
(** classify a request: [`Fresh] (apply it), [`Duplicate (commit,
    reports, delta_ops)] (already committed — re-acknowledge, don't
    re-apply), [`Stale] (older than the last acknowledged request from
    this client — reject) *)

val admit : ?now:float -> t -> client:string -> [ `Ok | `Evicted of string | `Full ]
(** is there room to {!record} an entry for [client]? [`Ok] when the
    client is already present or the table is under [cap]; [`Evicted
    victim] when space was reclaimed from an entry silent for at least
    [min_age]; [`Full] when every entry is recent — refuse the session
    rather than open an exactly-once hole. Call before applying a fresh
    request. *)

val record : ?now:float -> t -> client:string -> seq:int -> commit:int ->
  reports:int -> delta:int -> bool
(** remember a freshly committed request, superseding the client's
    previous entry. Returns [true] in the last-resort case where an
    unadmitted insert into a full table forced an eviction (callers that
    gate with {!admit} never see it). *)

val snapshot : t -> Rxv_persist.Persist.session list
(** the whole table, for checkpoint-rotation persistence *)

val load : ?now:float -> t -> Rxv_persist.Persist.session list -> unit
(** replace the table's contents with a recovered snapshot; every
    recovered entry is stamped as fresh at [now] *)

val size : t -> int
