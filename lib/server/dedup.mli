(** The exactly-once dedup table: one entry per client, remembering the
    last acknowledged request and what it committed as.

    The protocol is NFSv4-session-shaped: a client sends strictly
    increasing [req_seq] numbers and retries a request with the {e same}
    number, so the server only needs the latest entry per client — a
    retry of anything older than the last acknowledged request can only
    come from a broken client and is rejected as stale.

    The table itself is not separately persisted; it is reconstructed
    from the WAL (each committed group's record carries its origin, and
    checkpoint rotation snapshots the whole table into the fresh log —
    see {!Rxv_persist.Persist}). This module is the in-memory half. *)

type t

val create : ?cap:int -> unit -> t
(** [cap] (default 1024) bounds the table; admitting a client beyond it
    evicts the entry with the oldest commit number — a client silent for
    that long has abandoned its retries *)

val check :
  t ->
  client:string ->
  seq:int ->
  [ `Fresh | `Duplicate of int * int * int | `Stale ]
(** classify a request: [`Fresh] (apply it), [`Duplicate (commit,
    reports, delta_ops)] (already committed — re-acknowledge, don't
    re-apply), [`Stale] (older than the last acknowledged request from
    this client — reject) *)

val record : t -> client:string -> seq:int -> commit:int -> reports:int ->
  delta:int -> unit
(** remember a freshly committed request, superseding the client's
    previous entry *)

val snapshot : t -> Rxv_persist.Persist.session list
(** the whole table, for checkpoint-rotation persistence *)

val load : t -> Rxv_persist.Persist.session list -> unit
(** replace the table's contents with a recovered snapshot *)

val size : t -> int
