(** Attribute Translation Grammars (Section 2.2).

    An ATG σ : R → D pairs a DTD D with, per production, a rule describing
    how the children of an A-element and their semantic attributes $B are
    computed from $A and the database:

    - [A → B*]: an SPJ query Q($A); each result row yields one B child
      whose $B is the row (Fig. 2's Q_prereq_course).
    - [A → B1, …, Bn]: per child, an attribute map built from $A's fields
      and constants ($cno = $course.cno).
    - [A → B1 + … + Bn]: guarded alternatives; the first matching guard
      selects the child.
    - [A → pcdata]: the element's text is a designated field of $A.

    Star queries are forced into key-preserved form at construction
    (Section 4.1; the extension does not change the published view because
    the semantic attribute $B remains the original projection prefix —
    [attr_width] — while the extra key columns ride along as edge
    provenance). *)

module Value = Rxv_relational.Value
module Schema = Rxv_relational.Schema
module Tuple = Rxv_relational.Tuple
module Spj = Rxv_relational.Spj
module Dtd = Rxv_xml.Dtd

type field_expr =
  | From_parent of int  (** field i of $A *)
  | Const of Value.t

type attr_map = field_expr array

type guard =
  | Always
  | Field_eq of int * Value.t  (** $A.(i) = v *)

type star_rule = {
  query : Spj.t;  (** key-preserved; parameters are $A's fields *)
  attr_width : int;  (** prefix of the output row that forms $B *)
}

type rule =
  | R_star of star_rule
  | R_seq of (string * attr_map) list  (** (child type, $B map) in order *)
  | R_alt of (guard * string * attr_map) list
  | R_pcdata of int  (** index of the $A field providing the text *)
  | R_empty

type t = {
  name : string;
  schema : Schema.db;
  dtd : Dtd.t;
  rules : (string, rule) Hashtbl.t;
  root_attr : Tuple.t;
  attr_tys : (string, Value.ty array) Hashtbl.t;
      (** inferred type of $A per element type *)
}

exception Atg_error of string

let atg_error fmt = Fmt.kstr (fun s -> raise (Atg_error s)) fmt

let rule t etype =
  match Hashtbl.find_opt t.rules etype with
  | Some r -> r
  | None -> atg_error "ATG %s: no rule for element type %s" t.name etype

let attr_tys t etype =
  match Hashtbl.find_opt t.attr_tys etype with
  | Some tys -> tys
  | None -> atg_error "ATG %s: type %s unreachable, no $%s type" t.name etype etype

(* Infer the attribute type of each reachable element type by propagation
   from the root; recursion requires the types to agree on revisit. *)
let infer_attr_tys ~name ~schema ~dtd ~rules ~root_tys =
  let tys = Hashtbl.create 16 in
  let eval_map_tys parent_tys (m : attr_map) =
    Array.map
      (function
        | From_parent i ->
            if i < 0 || i >= Array.length parent_tys then
              atg_error "ATG %s: attribute map field $%d out of range" name i
            else parent_tys.(i)
        | Const v -> (
            match Value.ty_of v with
            | Some ty -> ty
            | None -> atg_error "ATG %s: null constant in attribute map" name))
      m
  in
  let rec visit etype (etys : Value.ty array) =
    match Hashtbl.find_opt tys etype with
    | Some prev ->
        if prev <> etys then
          atg_error
            "ATG %s: element type %s reached with conflicting $%s types" name
            etype etype
    | None -> (
        Hashtbl.replace tys etype etys;
        let r =
          match Hashtbl.find_opt rules etype with
          | Some r -> r
          | None -> atg_error "ATG %s: no rule for %s" name etype
        in
        match (Dtd.production dtd etype, r) with
        | Dtd.Pcdata, R_pcdata i ->
            if i < 0 || i >= Array.length etys then
              atg_error "ATG %s: pcdata index %d out of range for %s" name i
                etype
        | Dtd.Empty, R_empty -> ()
        | Dtd.Star b, R_star { query; attr_width } ->
            let out = Spj.check schema ~param_tys:etys query in
            if attr_width <= 0 || attr_width > List.length out then
              atg_error "ATG %s: bad attr_width for %s -> %s*" name etype b;
            let btys =
              Array.of_list
                (List.filteri (fun i _ -> i < attr_width) (List.map snd out))
            in
            visit b btys
        | Dtd.Seq bs, R_seq maps ->
            if List.map fst maps <> bs then
              atg_error "ATG %s: R_seq children of %s disagree with DTD" name
                etype;
            List.iter (fun (b, m) -> visit b (eval_map_tys etys m)) maps
        | Dtd.Alt bs, R_alt branches ->
            List.iter
              (fun (g, b, m) ->
                if not (List.mem b bs) then
                  atg_error "ATG %s: R_alt branch %s not in production of %s"
                    name b etype;
                (match g with
                | Always -> ()
                | Field_eq (i, _) ->
                    if i < 0 || i >= Array.length etys then
                      atg_error "ATG %s: guard field $%d out of range" name i);
                visit b (eval_map_tys etys m))
              branches
        | prod, _ ->
            atg_error "ATG %s: rule for %s does not match its production (%a)"
              name etype Dtd.pp_content prod)
  in
  visit dtd.Dtd.root root_tys;
  tys

(** [make ~name ~schema ~dtd ~root_attr rules] builds and validates an
    ATG. Star queries are extended to key-preserved form automatically. *)
let make ~name ~schema ~dtd ?(root_attr = [||]) rules =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (etype, r) ->
      if Hashtbl.mem tbl etype then
        atg_error "ATG %s: duplicate rule for %s" name etype;
      let r =
        match r with
        | R_star { query; attr_width } ->
            R_star
              { query = Spj.make_key_preserving schema query; attr_width }
        | r -> r
      in
      Hashtbl.replace tbl etype r)
    rules;
  let root_tys =
    Array.map
      (fun v ->
        match Value.ty_of v with
        | Some ty -> ty
        | None -> atg_error "ATG %s: null in root attribute" name)
      root_attr
  in
  let attr_tys =
    infer_attr_tys ~name ~schema ~dtd ~rules:tbl ~root_tys
  in
  { name; schema; dtd; rules = tbl; root_attr; attr_tys }

(** Convenience constructor for star rules: [attr_width] defaults to the
    full user projection (before key-preservation extension). *)
let star ?attr_width query =
  let width =
    match attr_width with
    | Some w -> w
    | None -> List.length query.Spj.select
  in
  R_star { query; attr_width = width }

(** Evaluate an attribute map against a parent attribute. *)
let apply_map (m : attr_map) (parent : Tuple.t) : Tuple.t =
  Array.map
    (function
      | From_parent i -> parent.(i)
      | Const v -> v)
    m

let guard_holds g (parent : Tuple.t) =
  match g with
  | Always -> true
  | Field_eq (i, v) -> Value.equal parent.(i) v

(** The element types whose parents may legally gain/lose children by an
    XML update: B appears under a star production A → B*. *)
let star_positions t : (string * string) list =
  Hashtbl.fold
    (fun etype r acc ->
      match (Dtd.production t.dtd etype, r) with
      | Dtd.Star b, R_star _ -> (etype, b) :: acc
      | _ -> acc)
    t.rules []

(** All star rules, with their parent/child types. *)
let star_rules t : (string * string * star_rule) list =
  Hashtbl.fold
    (fun etype r acc ->
      match (Dtd.production t.dtd etype, r) with
      | Dtd.Star b, R_star sr -> (etype, b, sr) :: acc
      | _ -> acc)
    t.rules []
