(** Schema-directed publishing: σ(I) as a compressed DAG.

    The publisher expands element types top-down from the root, exactly as
    in Section 2.2, but allocates nodes through the store's gen_id Skolem
    function — so the subtree property (the subtree below a node is a
    function of its type and semantic attribute) makes every shared
    subtree expand once. The result is the DAG compression of Section 2.3
    directly; the tree view is recovered by {!Rxv_dag.Store.to_tree}.

    Publishing checks acyclicity: base data with, e.g., cyclic
    prerequisites would denote an infinite tree, which we reject (the
    paper's views are trees, so σ(I) must be a DAG). *)

module Store = Rxv_dag.Store
module Value = Rxv_relational.Value
module Tuple = Rxv_relational.Tuple
module Eval = Rxv_relational.Eval
module Database = Rxv_relational.Database
module Dtd = Rxv_xml.Dtd

exception Cyclic_view of string

(* Create (or find) the node for (etype, attr), setting pcdata text. *)
let intern (atg : Atg.t) store etype (attr : Tuple.t) =
  let text =
    match Atg.rule atg etype with
    | Atg.R_pcdata i -> Some (Value.to_string attr.(i))
    | _ -> None
  in
  Store.gen_id store etype attr ?text ()

(* Per-publish evaluation strategy for star rules: bulk-evaluate each rule
   once and group by parameter when possible (see Eval.run_grouped) —
   per-parent evaluation is quadratic over a full view — falling back to
   per-call evaluation for rules whose parameters are not column-bound. *)
type star_eval = string -> Atg.star_rule -> Tuple.t -> Tuple.t list

let per_call_star_eval (db : Database.t) : star_eval =
  (* the same rule fires once per parent: compile its plan once *)
  let plans : (string, Eval.plan) Hashtbl.t = Hashtbl.create 8 in
  fun etype sr attr ->
    let plan =
      match Hashtbl.find_opt plans etype with
      | Some p -> p
      | None ->
          let p = Eval.prepare db sr.Atg.query in
          Hashtbl.replace plans etype p;
          p
    in
    Eval.run_prepared db plan ~params:attr ()

let bulk_star_eval (atg : Atg.t) (db : Database.t) : star_eval =
  let cache : (string, Tuple.t -> Tuple.t list) Hashtbl.t = Hashtbl.create 8 in
  fun etype sr attr ->
    let lookup =
      match Hashtbl.find_opt cache etype with
      | Some l -> l
      | None ->
          let nparams = Array.length (Atg.attr_tys atg etype) in
          let l =
            match Eval.run_grouped db sr.Atg.query ~nparams with
            | Some grouped -> fun params -> grouped (Array.to_list params)
            | None ->
                let plan = Eval.prepare db sr.Atg.query in
                fun params -> Eval.run_prepared db plan ~params ()
          in
          Hashtbl.replace cache etype l;
          l
    in
    lookup attr

(* Children of a node as (child type, $B, provenance) triples, straight
   from the rules. *)
let expand_children (atg : Atg.t) (star_eval : star_eval) etype
    (attr : Tuple.t) : (string * Tuple.t * Tuple.t option) list =
  match Atg.rule atg etype with
  | Atg.R_pcdata _ | Atg.R_empty -> []
  | Atg.R_seq maps ->
      List.map (fun (b, m) -> (b, Atg.apply_map m attr, None)) maps
  | Atg.R_alt branches -> (
      match
        List.find_opt (fun (g, _, _) -> Atg.guard_holds g attr) branches
      with
      | Some (_, b, m) -> [ (b, Atg.apply_map m attr, None) ]
      | None ->
          Atg.atg_error "ATG %s: no alternative matches at %s" atg.Atg.name
            etype)
  | Atg.R_star sr ->
      let b =
        match Dtd.production atg.Atg.dtd etype with
        | Dtd.Star b -> b
        | _ -> assert false
      in
      List.map
        (fun row ->
          let battr = Array.sub row 0 sr.Atg.attr_width in
          (b, battr, Some row))
        (star_eval etype sr attr)

(* Expand every unexpanded node reachable from the work list.
   [is_expanded] marks nodes expanded before this call without
   materializing them in [expanded] — publish_subtree passes an id
   watermark so it never touches the O(|view|) pre-existing portion. *)
let expand_from ?(is_expanded = fun _ -> false) (atg : Atg.t)
    (star_eval : star_eval) (store : Store.t)
    (expanded : (int, unit) Hashtbl.t) (work : int list) =
  let seen id = is_expanded id || Hashtbl.mem expanded id in
  let queue = Queue.create () in
  List.iter (fun id -> Queue.add id queue) work;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if not (seen id) then begin
      Hashtbl.replace expanded id ();
      let n = Store.node store id in
      List.iter
        (fun (b, battr, provenance) ->
          let cid = intern atg store b battr in
          Store.add_edge store id cid ~provenance;
          if not (seen cid) then Queue.add cid queue)
        (expand_children atg star_eval n.Store.etype n.Store.attr)
    end
  done

let check_acyclic store =
  let color = Hashtbl.create (Store.n_nodes store) in
  let rec visit id =
    match Hashtbl.find_opt color id with
    | Some `Done -> ()
    | Some `Active ->
        raise
          (Cyclic_view
             (Printf.sprintf "node %d participates in a reference cycle" id))
    | None ->
        Hashtbl.replace color id `Active;
        List.iter visit (Store.children store id);
        Hashtbl.replace color id `Done
  in
  Store.iter_nodes (fun n -> visit n.Store.id) store

(** [publish atg db] materializes the DAG compression of σ(I).
    [strategy] selects bulk (default) or per-parent rule evaluation — the
    per-call variant exists for the ablation benchmark.
    @raise Cyclic_view if the data induces an infinite tree. *)
let publish ?(strategy = `Bulk) (atg : Atg.t) (db : Database.t) : Store.t =
  let store = Store.create () in
  let root_id = intern atg store atg.Atg.dtd.Dtd.root atg.Atg.root_attr in
  Store.set_root store root_id;
  let expanded = Hashtbl.create 1024 in
  let star_eval =
    match strategy with
    | `Bulk -> bulk_star_eval atg db
    | `Per_call -> per_call_star_eval db
  in
  expand_from atg star_eval store expanded [ root_id ];
  check_acyclic store;
  store

(** [publish_subtree atg db store (a, t)] expands ST(a, t) *inside* an
    existing store — the step Xinsert (Fig. 5, line 2) delegates to "the
    algorithm of [8]". Returns the subtree root id, all subtree node ids
    (NA), and the subset that did not exist before. The store is assumed
    fully expanded for pre-existing nodes, so expansion stops at shared
    boundaries. *)
let publish_subtree (atg : Atg.t) (db : Database.t) (store : Store.t)
    (etype : string) (attr : Tuple.t) : int * int list * int list =
  if not (Dtd.mem atg.Atg.dtd etype) then
    Atg.atg_error "ATG %s: unknown element type %s" atg.Atg.name etype;
  let tys = Atg.attr_tys atg etype in
  if
    Array.length tys <> Array.length attr
    || not (Array.for_all2 (fun ty v -> Value.has_ty ty v) tys attr)
  then
    Atg.atg_error "ATG %s: attribute does not match $%s's type" atg.Atg.name
      etype;
  let first_new_id = Store.next_id store in
  let root_id = intern atg store etype attr in
  let expanded = Hashtbl.create 64 in
  (* pre-existing nodes are already fully expanded; an id below the
     watermark predates this call (a pre-existing root is covered too:
     nothing below it needs expanding) *)
  expand_from atg (per_call_star_eval db) store expanded [ root_id ]
    ~is_expanded:(fun id -> id < first_new_id);
  (* collect NA = desc-or-self of the subtree root *)
  let na = Hashtbl.create 64 in
  let rec go id =
    if not (Hashtbl.mem na id) then begin
      Hashtbl.replace na id ();
      List.iter go (Store.children store id)
    end
  in
  go root_id;
  let na_list = Hashtbl.fold (fun id () acc -> id :: acc) na [] in
  let new_nodes = List.filter (fun id -> id >= first_new_id) na_list in
  (root_id, na_list, new_nodes)
