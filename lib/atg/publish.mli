(** Schema-directed publishing: σ(I) as a compressed DAG (Sections 2.2-2.3).

    Expansion is top-down from the root, allocating nodes through gen_id:
    the subtree property makes every shared subtree expand once, yielding
    the DAG compression directly. Star rules are bulk-evaluated (one query
    per rule, grouped by parent) when their parameters are column-bound. *)

module Store = Rxv_dag.Store
module Tuple = Rxv_relational.Tuple
module Database = Rxv_relational.Database

exception Cyclic_view of string
(** the base data denotes an infinite tree (e.g. cyclic prerequisites) *)

type star_eval = string -> Atg.star_rule -> Tuple.t -> Tuple.t list

val per_call_star_eval : Database.t -> star_eval
val bulk_star_eval : Atg.t -> Database.t -> star_eval

val publish : ?strategy:[ `Bulk | `Per_call ] -> Atg.t -> Database.t -> Store.t
(** materialize the DAG compression of σ(I). [strategy] (default
    [`Bulk]) selects bulk vs per-parent rule evaluation; the per-call
    variant exists for the ablation benchmark.
    @raise Cyclic_view when the data induces an infinite tree. *)

val publish_subtree :
  Atg.t -> Database.t -> Store.t -> string -> Tuple.t -> int * int list * int list
(** [publish_subtree atg db store a t] expands ST(a, t) inside an existing
    store — the step Xinsert delegates to the publishing algorithm (Fig. 5
    line 2). Returns (subtree root id, all subtree node ids NA, the newly
    created subset). Expansion stops at pre-existing (already expanded)
    nodes. @raise Atg.Atg_error on unknown types or ill-typed attributes. *)
