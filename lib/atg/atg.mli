(** Attribute Translation Grammars (Section 2.2): a DTD paired with, per
    production, a rule computing an element's children and their semantic
    attributes $B from $A and the database.

    Star queries are forced into key-preserved form at construction
    (Section 4.1); the published view is unchanged because $B remains the
    original projection prefix ([attr_width]) while the extra key columns
    ride along as edge provenance. *)

module Value = Rxv_relational.Value
module Schema = Rxv_relational.Schema
module Tuple = Rxv_relational.Tuple
module Spj = Rxv_relational.Spj
module Dtd = Rxv_xml.Dtd

type field_expr =
  | From_parent of int  (** field i of $A *)
  | Const of Value.t

type attr_map = field_expr array

type guard =
  | Always
  | Field_eq of int * Value.t  (** $A.(i) = v *)

type star_rule = {
  query : Spj.t;  (** key-preserved; parameters are $A's fields *)
  attr_width : int;  (** prefix of the output row that forms $B *)
}

type rule =
  | R_star of star_rule  (** for A → B* *)
  | R_seq of (string * attr_map) list  (** for A → B1, …, Bn *)
  | R_alt of (guard * string * attr_map) list  (** for A → B1 + … + Bn *)
  | R_pcdata of int  (** index of the $A field providing the text *)
  | R_empty

type t = {
  name : string;
  schema : Schema.db;
  dtd : Dtd.t;
  rules : (string, rule) Hashtbl.t;
  root_attr : Tuple.t;
  attr_tys : (string, Value.ty array) Hashtbl.t;
}

exception Atg_error of string

val atg_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

val make :
  name:string ->
  schema:Schema.db ->
  dtd:Dtd.t ->
  ?root_attr:Tuple.t ->
  (string * rule) list ->
  t
(** build and validate: every rule matches its production's shape, star
    queries type-check against $A and are made key-preserving, attribute
    types propagate consistently through recursion.
    @raise Atg_error otherwise. *)

val star : ?attr_width:int -> Spj.t -> rule
(** star rule; [attr_width] defaults to the full user projection *)

val rule : t -> string -> rule
val attr_tys : t -> string -> Value.ty array
(** the inferred type of $A for a (reachable) element type *)

val apply_map : attr_map -> Tuple.t -> Tuple.t
val guard_holds : guard -> Tuple.t -> bool

val star_positions : t -> (string * string) list
(** (A, B) pairs with production A → B* — the only positions XML updates
    may touch (Section 2.4) *)

val star_rules : t -> (string * string * star_rule) list
