(** The topological order L of Section 3.1.

    L lists every distinct node of the DAG such that u precedes v only if
    u is *not* an ancestor of v — i.e. descendants come first and the root
    comes last. Algorithm Reach consumes L backwards (root first); the
    bottom-up XPath pass consumes it forwards (leaves first).

    The structure supports the operations the maintenance algorithms of
    Section 3.4 need: ordinal comparison, the paper's [swap(L, u, v)] move
    (relocating L[u:v] ∩ desc(v) immediately in front of u), tombstoned
    removal, and pivot-based merging of a subtree order (Fig. 7, line 14).
    Tombstones keep removal O(1); the array compacts when more than half
    the slots are dead.

    The position map is a plain int array indexed by node id — the store
    allocates ids densely from 0, so this is exact, and it keeps the
    maintenance hot paths (every [ord]/[mem], and the full-position
    rewrites of [compact]/[insert_before]) at array-write cost instead of
    a hashtable operation per node. *)

module Journal = Rxv_relational.Journal

type t = {
  mutable arr : int array;  (** node ids, -1 for tombstones *)
  mutable len : int;  (** used prefix of [arr] *)
  mutable pos : int array;  (** id -> index in [arr]; -1 = not in L *)
  mutable live : int;  (** number of ids present *)
  journal : Journal.t;
      (** undo journal; each mutator records an exact inverse while a
          frame is open. Auto-compaction is deferred while a frame is
          open so recorded indices stay valid. *)
  mutable shared : bool;
      (** [arr] is referenced by a frozen view; the next in-place write
          must copy it first ({!unshare}) *)
}

exception Topo_error of string

let topo_error fmt = Fmt.kstr (fun s -> raise (Topo_error s)) fmt

let journal l = l.journal
let begin_ l = Journal.begin_ l.journal
let commit l = Journal.commit l.journal
let abort l = Journal.abort l.journal
let recording l = Journal.recording l.journal

(* Lazy copy-on-write against frozen views: the first in-place order
   mutation after a freeze privatizes the array with one shallow copy;
   undo closures read [l.arr] through the record field (or capture the
   post-unshare object), so rollback also lands on the private copy. *)
let unshare l =
  if l.shared then begin
    l.arr <- Array.copy l.arr;
    l.shared <- false
  end

let ensure_pos l id =
  let n = Array.length l.pos in
  if id >= n then begin
    let pos = Array.make (max (id + 1) (max 16 (2 * n))) (-1) in
    Array.blit l.pos 0 pos 0 n;
    l.pos <- pos
  end

let set_pos l id i =
  ensure_pos l id;
  Array.unsafe_set l.pos id i

let of_ids (ids : int list) : t =
  let arr = Array.of_list ids in
  let l =
    {
      arr;
      len = Array.length arr;
      pos = [||];
      live = 0;
      journal = Journal.create ();
      shared = false;
    }
  in
  Array.iteri
    (fun i id ->
      set_pos l id i;
      l.live <- l.live + 1)
    arr;
  l

(** Post-order DFS from the root: children before parents, hence
    descendants-first — a valid L. O(|V|). *)
let of_store (store : Store.t) : t =
  let seen = Hashtbl.create (Store.n_nodes store) in
  let order = ref [] in
  (* iterative DFS to survive deep DAGs *)
  let visit start =
    if not (Hashtbl.mem seen start) then begin
      let stack = ref [ (start, ref (Store.children store start)) ] in
      Hashtbl.replace seen start ();
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (id, rest) :: tl -> (
            match !rest with
            | [] ->
                order := id :: !order;
                stack := tl
            | c :: cs ->
                rest := cs;
                if not (Hashtbl.mem seen c) then begin
                  Hashtbl.replace seen c ();
                  stack := (c, ref (Store.children store c)) :: !stack
                end)
      done
    end
  in
  visit (Store.root store);
  (* include any detached nodes so |L| = n, placing them first (they have
     no ancestors among reachable nodes) *)
  let detached =
    Store.fold_nodes
      (fun n acc ->
        if Hashtbl.mem seen n.Store.id then acc else n.Store.id :: acc)
      store []
  in
  (* !order currently lists root first; reverse for descendants-first *)
  of_ids (detached @ List.rev !order)

let mem l id = id >= 0 && id < Array.length l.pos && l.pos.(id) >= 0

(** Ordinal of [id]; total order consistent with L. *)
let ord l id =
  if mem l id then Array.unsafe_get l.pos id
  else topo_error "node %d not in topological order" id

let is_before l a b = ord l a < ord l b

let live_count l = l.live

let to_list l =
  let out = ref [] in
  for i = l.len - 1 downto 0 do
    if l.arr.(i) >= 0 then out := l.arr.(i) :: !out
  done;
  !out

(** Forward iteration: leaves first. *)
let iter f l =
  for i = 0 to l.len - 1 do
    if l.arr.(i) >= 0 then f l.arr.(i)
  done

(** Backward iteration: root side first (the order Algorithm Reach and the
    delete maintenance use). *)
let iter_backward f l =
  for i = l.len - 1 downto 0 do
    if l.arr.(i) >= 0 then f l.arr.(i)
  done

let compact l =
  (* the fresh array is private by construction *)
  l.shared <- false;
  let arr = Array.make (max 8 l.live) (-1) in
  let j = ref 0 in
  for i = 0 to l.len - 1 do
    if l.arr.(i) >= 0 then begin
      arr.(!j) <- l.arr.(i);
      l.pos.(l.arr.(i)) <- !j;
      incr j
    end
  done;
  l.arr <- arr;
  l.len <- !j

let remove l id =
  if mem l id then begin
    unshare l;
    let i = l.pos.(id) in
    l.arr.(i) <- -1;
    l.pos.(id) <- -1;
    l.live <- l.live - 1;
    (* the inverse reads [l.arr]/[l.pos] at replay time: any later array
       swap is itself journaled and undone first (LIFO), so the fields
       hold the same objects they did here *)
    if recording l then
      Journal.record l.journal (fun () ->
          l.arr.(i) <- id;
          l.pos.(id) <- i;
          l.live <- l.live + 1);
    (* compaction is deferred while a frame is open: it would relocate
       every live id, invalidating the indices recorded above *)
    if l.len > 16 && l.live * 2 < l.len && not (Journal.active l.journal) then
      compact l
  end

(** [swap l u v ~is_desc_of_v] implements the paper's [swap(L, u, v)]:
    given an inserted edge (u, v) with ord u < ord v, move the nodes of
    L[u:v] that are descendants-or-self of v immediately in front of u,
    preserving relative order within both groups. [is_desc_of_v id] must
    answer "is id a descendant of v (or v itself)?" against the *updated*
    reachability. O(|L[u:v]|). *)
let swap l u v ~is_desc_of_v =
  let iu = ord l u and iv = ord l v in
  if iu < iv then begin
    unshare l;
    (* inverse: restore the permuted window verbatim (positions included;
       tombstones are skipped — their pos entries were never touched) *)
    if recording l then begin
      let saved = Array.sub l.arr iu (iv - iu + 1) in
      Journal.record l.journal (fun () ->
          Array.iteri
            (fun k id ->
              l.arr.(iu + k) <- id;
              if id >= 0 then l.pos.(id) <- iu + k)
            saved)
    end;
    let moved = ref [] and kept = ref [] in
    for i = iv downto iu do
      let id = l.arr.(i) in
      if id >= 0 then
        if id = v || is_desc_of_v id then moved := id :: !moved
        else kept := id :: !kept
    done;
    let window = !moved @ !kept in
    let i = ref iu in
    List.iter
      (fun id ->
        (* skip tombstones inside the window *)
        while l.arr.(!i) < 0 do
          incr i
        done;
        l.arr.(!i) <- id;
        l.pos.(id) <- !i;
        incr i)
      window
  end

(** [insert_before l anchored] splices new nodes into L: [anchored] maps
    each new id to the existing id it must precede; ids sharing an anchor
    keep their list order. O(|L| + inserts) array writes, in place (the
    array grows by amortized doubling): a fresh O(|L|) allocation per
    update would be paid mostly in GC work against the engine's live
    heap. *)
let insert_before l (anchored : (int * int) list) =
  if anchored <> [] then begin
    unshare l;
    let by_anchor = Hashtbl.create 8 in
    let k = ref 0 in
    List.iter
      (fun (nid, anchor) ->
        if mem l nid then
          topo_error "insert_before: node %d already in L" nid;
        let idx = ord l anchor in
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_anchor idx) in
        Hashtbl.replace by_anchor idx (prev @ [ nid ]);
        incr k)
      anchored;
    let k = !k in
    (* inverse: one self-contained closure restoring the pre-insert state.
       It re-installs the original array objects (the shift below may swap
       [l.arr] by doubling, and [set_pos] may swap [l.pos] mid-loop, so
       entry-by-entry undo against [l.arr] would be ambiguous), clears the
       new ids' positions and rewrites the originals from a saved prefix.
       The O(len) save does not change the cost class: the shift loop
       below is already O(len). *)
    if recording l then begin
      let old_arr = l.arr and old_pos = l.pos in
      let old_len = l.len and old_live = l.live in
      let saved = Array.sub l.arr 0 l.len in
      Journal.record l.journal (fun () ->
          l.arr <- old_arr;
          l.pos <- old_pos;
          List.iter
            (fun (nid, _) ->
              if nid < Array.length old_pos then old_pos.(nid) <- -1)
            anchored;
          Array.blit saved 0 old_arr 0 old_len;
          for i = 0 to old_len - 1 do
            let id = saved.(i) in
            if id >= 0 then old_pos.(id) <- i
          done;
          l.len <- old_len;
          l.live <- old_live)
    end;
    if l.len + k > Array.length l.arr then begin
      let arr =
        Array.make (max 8 (max (l.len + k) (2 * Array.length l.arr))) (-1)
      in
      Array.blit l.arr 0 arr 0 l.len;
      l.arr <- arr
    end;
    (* shift right, back to front, dropping each anchor's news (in list
       order) immediately before the anchor; anchors are walked as a
       descending list so the loop does plain array moves, not a lookup
       per index *)
    let anchors =
      List.sort
        (fun (a, _) (b, _) -> compare b a)
        (Hashtbl.fold (fun idx news acc -> (idx, news) :: acc) by_anchor [])
    in
    let pending = ref anchors in
    let j = ref (l.len + k - 1) in
    for i = l.len - 1 downto 0 do
      let id = l.arr.(i) in
      l.arr.(!j) <- id;
      if id >= 0 then l.pos.(id) <- !j;
      decr j;
      match !pending with
      | (idx, news) :: rest when idx = i ->
          pending := rest;
          List.iter
            (fun nid ->
              l.arr.(!j) <- nid;
              set_pos l nid !j;
              decr j)
            (List.rev news)
      | _ -> ()
    done;
    l.len <- l.len + k;
    l.live <- l.live + k
  end

(** Validity oracle: every edge's child precedes its parent. Used by
    tests, not by the engine. *)
let is_valid l store =
  let ok = ref true in
  Store.iter_edges
    (fun u v _ ->
      if not (mem l u && mem l v && ord l v < ord l u) then ok := false)
    store;
  !ok && live_count l = Store.n_nodes store

let pp ppf l = Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") Fmt.int) (to_list l)

(** Deep copy — used by test oracles; the copy gets a fresh journal with
    no open frames. *)
let copy l =
  {
    arr = Array.copy l.arr;
    len = l.len;
    pos = Array.copy l.pos;
    live = l.live;
    journal = Journal.create ();
    shared = false;
  }

(** {2 Frozen views (MVCC snapshot reads)}

    Freezing is O(1): it captures the current array object and flags it
    shared, so the next in-place mutation pays one shallow copy and all
    later ones are free. A view supports exactly what the read path
    needs — forward (leaves-first) iteration and the live count. *)

type view = { tv_arr : int array; tv_len : int; tv_live : int }

let freeze l =
  l.shared <- true;
  { tv_arr = l.arr; tv_len = l.len; tv_live = l.live }

(** Forward iteration over the view: leaves first. *)
let view_iter f v =
  for i = 0 to v.tv_len - 1 do
    if v.tv_arr.(i) >= 0 then f v.tv_arr.(i)
  done

let view_live_count v = v.tv_live
