(** The relational coding of a compressed XML view (Section 2.3).

    Nodes are identified by the Skolem function gen_id applied to their
    element type and semantic-attribute value, so shared subtrees are
    stored once. The store keeps the gen_A registries, the ordered edge
    relations edge_A_B (with, on star edges, the key-preserved SPJ rows
    that produced each edge — its provenance), parent lists, and a dense
    slot per node for bitset indexing. *)

module Value = Rxv_relational.Value
module Tuple = Rxv_relational.Tuple

type node = {
  id : int;
  etype : string;
  attr : Tuple.t;  (** the value of the semantic attribute $A *)
  text : string option;  (** pcdata content, for pcdata-typed elements *)
  slot : int;
}

type edge_info = {
  mutable provenance : Tuple.t list;
      (** the key-preserved SPJ rows producing this edge; distinct base
          derivations appear as distinct rows — Algorithm delete must
          remove a source of each. Empty for structural edges. *)
}

type t

exception Dag_error of string

val create : unit -> t

val journal : t -> Rxv_relational.Journal.t
(** the store's undo journal; every mutation entry point records its
    exact inverse while a frame is open *)

val begin_ : t -> unit
(** open a (possibly nested) transaction frame *)

val commit : t -> unit
(** keep the frame's effects (folding its inverses into any parent
    frame). @raise Rxv_relational.Journal.No_transaction without a frame *)

val abort : t -> unit
(** undo every node/edge mutation since the matching {!begin_}, in O(Δ) —
    ids, slots, document order and provenance are restored exactly.
    @raise Rxv_relational.Journal.No_transaction without a frame *)

val node : t -> int -> node
(** @raise Dag_error for unknown ids. *)

val mem_node : t -> int -> bool
val find_id : t -> string -> Tuple.t -> int option

val gen_id : t -> string -> Tuple.t -> ?text:string -> unit -> int
(** the Skolem function: the unique id for (etype, attr), creating and
    registering the node on first use *)

val set_root : t -> int -> unit
val root : t -> int

val children : t -> int -> int list
(** ordered (document order) *)

val parents : t -> int -> int list
val in_degree : t -> int -> int
val out_degree : t -> int -> int

val mem_edge : t -> int -> int -> bool
val edge_info : t -> int -> int -> edge_info

val add_edge : t -> int -> int -> provenance:Tuple.t option -> unit
(** append the child at the rightmost position (the paper's insertion
    semantics); re-adding only accumulates new provenance rows *)

val remove_edge : t -> int -> int -> bool
(** nodes are never removed here — that is the garbage collector's job *)

val remove_node : t -> int -> unit
(** unregister an edge-free node and recycle its slot.
    @raise Dag_error if edges remain. *)

val set_provenance : t -> int -> int -> Tuple.t list -> unit
(** replace an edge's derivation rows — the journaled entry point for
    provenance refresh; mutating {!edge_info} directly would bypass the
    undo journal. @raise Dag_error if the edge does not exist. *)

val id_of_slot : t -> int -> int option
val next_id : t -> int
(** ids are allocated monotonically, so [id >= next_id t] taken before an
    operation identifies the nodes it created *)

val n_nodes : t -> int
val n_edges : t -> int
val slot_capacity : t -> int

val iter_nodes : (node -> unit) -> t -> unit
val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a
val iter_edges : (int -> int -> edge_info -> unit) -> t -> unit

val gen_ids : t -> string -> int list
(** the gen_A registry for an element type *)

val gen_cardinal : t -> string -> int

type gen_view = {
  gv_ids : int array;  (** ascending node ids; read slots [0, gv_len) only *)
  gv_len : int;
  gv_version : int;
  gv_reset : int;
}

val gen_view : t -> string -> gen_view
(** Sorted image of gen_A with change stamps, maintained incrementally
    across store mutations (including journal undo). The array is the
    store's internal buffer — treat it as read-only and re-fetch after
    any mutation. Contract: two views with equal [gv_version] have
    identical contents; with equal [gv_reset], the earlier view's
    [gv_len]-prefix is still a prefix of the later one (only appends
    happened in between) — the insertion translator uses this to extend
    cached per-registry structures in O(new ids) per update. *)

val edge_relation_sizes : t -> ((string * string) * int) list
(** |edge_A_B| per relation — the statistics of Fig. 10(b) *)

val tree_of : ?max_nodes:int -> t -> int -> Rxv_xml.Tree.t
(** materialize the (uncompressed) tree below a node; sizes can be
    exponential in the DAG, so [max_nodes] guards oracles.
    @raise Dag_error when the budget is exhausted. *)

val to_tree : ?max_nodes:int -> t -> Rxv_xml.Tree.t

val reachable_from_root : t -> (int, unit) Hashtbl.t

val occurrence_counts : t -> (int, int) Hashtbl.t
(** occurrences of each node in the uncompressed tree (sharing stats) *)

val copy : t -> t
(** deep copy — snapshot support for transactional update groups *)

(** {2 Frozen views}

    A {!view} is an immutable image of the node table, adjacency, and
    root. Freezing costs O(ids touched since the last freeze); node
    records and children lists are shared with the live store, never
    copied, so a view stays valid (and cheap) while the store keeps
    mutating. Capture with no transaction frame open to get committed
    state. *)

type view

val freeze : t -> view

val view_node : view -> int -> node
(** @raise Dag_error for ids unknown to the view. *)

val view_mem_node : view -> int -> bool

val view_children : view -> int -> int list
(** ordered (document order) *)

val view_parents : view -> int -> int list
val view_in_degree : view -> int -> int

val view_root : view -> int
(** @raise Dag_error when the view has no root. *)

val view_n_nodes : view -> int
val view_n_edges : view -> int

val view_slot_capacity : view -> int
(** the live store's slot capacity at freeze time — bitsets sized
    against it cover every node of the view *)

val view_fold_nodes : (node -> 'a -> 'a) -> view -> 'a -> 'a

val view_occurrence_counts : view -> (int, int) Hashtbl.t
(** {!occurrence_counts} computed from the view *)

(** {2 Durability}

    A [persisted] value is the store's complete state as plain data —
    what a checkpoint codec serializes. It captures everything {!copy}
    captures (ids, slots, free list, document order, provenance, root),
    so [of_persisted (to_persisted t)] is observationally identical to
    [t]: same Skolem ids, same slot assignment (L and M rebuilt against
    it line up bit for bit), same edge order. *)

type persisted_node = {
  pn_id : int;
  pn_etype : string;
  pn_attr : Tuple.t;
  pn_text : string option;
  pn_slot : int;
}

type persisted = {
  p_next_id : int;
  p_next_slot : int;
  p_free_slots : int list;
  p_root : int;  (** -1 when unset *)
  p_nodes : persisted_node list;  (** ascending id *)
  p_children : (int * int list) list;
      (** parent id, children in document order; ascending parent *)
  p_provenance : ((int * int) * Tuple.t list) list;
      (** derivation rows of star edges (edges absent here have none);
          ascending (parent, child) *)
}

val to_persisted : t -> persisted

val of_persisted : persisted -> t
(** rebuild a store from its persisted form. The journal starts fresh
    (no open frames survive a crash by design).
    @raise Dag_error when the data is inconsistent — duplicate ids or
    slots, counters behind allocated ids/slots, edges naming unknown
    nodes, or a dangling root. *)
