(** The relational coding of a compressed XML view (Section 2.3).

    A view σ(I) is stored as a DAG: each node is identified by the Skolem
    function gen_id applied to its element type and semantic-attribute
    value, so a subtree shared by many occurrences is stored once. The
    store keeps

    - [gen_A]: per element type, the registry of node identities;
    - the edge relations [edge_A_B], here as ordered adjacency lists plus
      parent lists and an edge table carrying, for star edges, the
      key-preserved SPJ output row that produced the edge (its provenance —
      what Algorithm delete's deletable sources are computed from);
    - a dense *slot* per node used to index bitsets (the reachability
      matrix rows).

    Slots of removed nodes are recycled; the maintenance algorithms
    guarantee no stale bits survive a removal (property-tested). *)

module Value = Rxv_relational.Value
module Tuple = Rxv_relational.Tuple
module Journal = Rxv_relational.Journal

type node = {
  id : int;
  etype : string;
  attr : Tuple.t;  (** the value of the semantic attribute $A *)
  text : string option;  (** pcdata content, for pcdata-typed elements *)
  slot : int;
}

type edge_info = {
  mutable provenance : Tuple.t list;
      (** the key-preserved SPJ view rows that produce this edge (star
          edges). Distinct base derivations of the same (id_A, id_B) pair
          appear as distinct rows — Algorithm delete must remove a source
          of each. Empty for structural (seq/alt/pcdata) edges. *)
}

module Imap = Map.Make (Int)

(** Cached ascending-sorted image of one gen_A registry, with change
    stamps so callers (the insertion translator's skeleton cache) can
    reuse derived structures across updates: [gs_version] bumps on every
    registry change; [gs_reset] bumps only when the sorted prefix is no
    longer stable (a removal, or an out-of-order re-insertion during
    journal undo) — between two equal [gs_reset] stamps the previous
    array contents are a prefix of the current ones. *)
type genseq = {
  mutable gs_ids : int array;  (** ascending ids, live prefix [0, gs_len) *)
  mutable gs_len : int;
  mutable gs_dirty : bool;  (** array no longer mirrors the registry *)
  mutable gs_version : int;
  mutable gs_reset : int;
}

type t = {
  mutable next_id : int;
  mutable next_slot : int;
  mutable free_slots : int list;
  ids : (string * Value.t list, int) Hashtbl.t;  (** gen_id memo table *)
  nodes : (int, node) Hashtbl.t;
  slot_ids : (int, int) Hashtbl.t;  (** slot -> node id *)
  gen : (string, (int, unit) Hashtbl.t) Hashtbl.t;  (** gen_A registries *)
  genseq : (string, genseq) Hashtbl.t;
      (** lazily materialized sorted registries; only etypes someone has
          asked a {!gen_view} for are tracked *)
  children : (int, int list ref) Hashtbl.t;  (** ordered adjacency *)
  parents : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  edges : (int * int, edge_info) Hashtbl.t;
  mutable root : int;
  journal : Journal.t;
      (** undo journal for transactional mutation; every mutation entry
          point records its exact inverse while a frame is open *)
  mutable c_nodes : node Imap.t;
      (** persistent image of [nodes] as of the last {!freeze} *)
  mutable c_children : int list Imap.t;
  mutable c_parents : int list Imap.t;
  dirty : (int, unit) Hashtbl.t;
      (** node ids whose record/adjacency possibly changed since the last
          {!freeze}; a superset is harmless *)
}

exception Dag_error of string

let dag_error fmt = Fmt.kstr (fun s -> raise (Dag_error s)) fmt

let create () =
  {
    next_id = 0;
    next_slot = 0;
    free_slots = [];
    ids = Hashtbl.create 1024;
    nodes = Hashtbl.create 1024;
    slot_ids = Hashtbl.create 1024;
    gen = Hashtbl.create 16;
    genseq = Hashtbl.create 8;
    children = Hashtbl.create 1024;
    parents = Hashtbl.create 1024;
    edges = Hashtbl.create 4096;
    root = -1;
    journal = Journal.create ();
    c_nodes = Imap.empty;
    c_children = Imap.empty;
    c_parents = Imap.empty;
    dirty = Hashtbl.create 1024;
  }

let mark_dirty t id = Hashtbl.replace t.dirty id ()

(* genseq maintenance: called from every code path that changes a gen_A
   registry, including journal-undo closures (an undo of gen_id is a
   removal; an undo of remove_node is an out-of-order re-insertion) *)
let gen_note_add t etype id =
  match Hashtbl.find_opt t.genseq etype with
  | None -> ()
  | Some gs ->
      gs.gs_version <- gs.gs_version + 1;
      if not gs.gs_dirty then
        if gs.gs_len = 0 || id > gs.gs_ids.(gs.gs_len - 1) then begin
          if gs.gs_len = Array.length gs.gs_ids then begin
            let a = Array.make (max 8 (2 * gs.gs_len)) 0 in
            Array.blit gs.gs_ids 0 a 0 gs.gs_len;
            gs.gs_ids <- a
          end;
          gs.gs_ids.(gs.gs_len) <- id;
          gs.gs_len <- gs.gs_len + 1
        end
        else begin
          (* re-insertion below the current maximum: the sorted prefix
             is no longer stable, rebuild lazily *)
          gs.gs_dirty <- true;
          gs.gs_reset <- gs.gs_reset + 1
        end

let gen_note_remove t etype _id =
  match Hashtbl.find_opt t.genseq etype with
  | None -> ()
  | Some gs ->
      gs.gs_version <- gs.gs_version + 1;
      if not gs.gs_dirty then begin
        gs.gs_dirty <- true;
        gs.gs_reset <- gs.gs_reset + 1
      end

let journal t = t.journal
let begin_ t = Journal.begin_ t.journal
let commit t = Journal.commit t.journal
let abort t = Journal.abort t.journal

let recording t = Journal.recording t.journal

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> dag_error "unknown node id %d" id

let mem_node t id = Hashtbl.mem t.nodes id

(** [find_id t etype attr] is the existing id for (etype, attr), if any. *)
let find_id t etype (attr : Tuple.t) =
  Hashtbl.find_opt t.ids (etype, Tuple.to_list attr)

(** [gen_id t etype attr ?text ()] is the Skolem function: returns the
    unique id for (etype, $A = attr), creating and registering the node on
    first use. *)
let gen_id t etype (attr : Tuple.t) ?text () =
  let key = (etype, Tuple.to_list attr) in
  match Hashtbl.find_opt t.ids key with
  | Some id -> id
  | None ->
      let id = t.next_id in
      t.next_id <- id + 1;
      let from_free = t.free_slots <> [] in
      let slot =
        match t.free_slots with
        | s :: rest ->
            t.free_slots <- rest;
            s
        | [] ->
            let s = t.next_slot in
            t.next_slot <- s + 1;
            s
      in
      let n = { id; etype; attr; text; slot } in
      mark_dirty t id;
      Hashtbl.replace t.ids key id;
      Hashtbl.replace t.nodes id n;
      Hashtbl.replace t.slot_ids slot id;
      let reg =
        match Hashtbl.find_opt t.gen etype with
        | Some r -> r
        | None ->
            let r = Hashtbl.create 64 in
            Hashtbl.replace t.gen etype r;
            r
      in
      Hashtbl.replace reg id ();
      gen_note_add t etype id;
      (* inverse: unregister the node and hand back its id and slot. Ids
         are monotonic and undos replay newest-first, so [next_id <- id]
         restores the pre-transaction counter exactly; likewise the slot
         goes back where it came from (free-list head or next_slot). *)
      if recording t then
        Journal.record t.journal (fun () ->
            Hashtbl.remove t.nodes id;
            Hashtbl.remove t.ids key;
            Hashtbl.remove t.slot_ids slot;
            Hashtbl.remove reg id;
            gen_note_remove t etype id;
            Hashtbl.remove t.children id;
            Hashtbl.remove t.parents id;
            t.next_id <- id;
            if from_free then t.free_slots <- slot :: t.free_slots
            else t.next_slot <- slot);
      id

let set_root t id =
  if recording t then begin
    let old = t.root in
    Journal.record t.journal (fun () -> t.root <- old)
  end;
  t.root <- id
let root t = if t.root < 0 then dag_error "store has no root" else t.root

let children t id =
  match Hashtbl.find_opt t.children id with Some l -> !l | None -> []

let parents t id =
  match Hashtbl.find_opt t.parents id with
  | Some tbl -> Hashtbl.fold (fun p () acc -> p :: acc) tbl []
  | None -> []

let in_degree t id =
  match Hashtbl.find_opt t.parents id with
  | Some tbl -> Hashtbl.length tbl
  | None -> 0

let out_degree t id = List.length (children t id)

let mem_edge t u v = Hashtbl.mem t.edges (u, v)

let edge_info t u v =
  match Hashtbl.find_opt t.edges (u, v) with
  | Some e -> e
  | None -> dag_error "no edge (%d, %d)" u v

(** [add_edge t u v ~provenance] appends [v] to [u]'s children (rightmost
    position, matching the paper's insertion semantics). Adding an existing
    edge only accumulates any new provenance row (set semantics of the
    relational views). *)
let rec add_edge t u v ~provenance =
  match Hashtbl.find_opt t.edges (u, v) with
  | Some info ->
      (match provenance with
      | Some row when not (List.exists (Tuple.equal row) info.provenance) ->
          info.provenance <- info.provenance @ [ row ];
          (* the row was not present before, so filtering it out is exact *)
          if recording t then
            Journal.record t.journal (fun () ->
                info.provenance <-
                  List.filter (fun r -> not (Tuple.equal r row)) info.provenance)
      | Some _ | None -> ())
  | None -> (
      ignore (node t u);
      ignore (node t v);
      mark_dirty t u;
      mark_dirty t v;
      Hashtbl.replace t.edges (u, v)
        { provenance = Option.to_list provenance };
      (* the child is appended at the rightmost position, so the plain
         [remove_edge] (which filters it out) is the exact inverse *)
      if recording t then
        Journal.record t.journal (fun () -> ignore (remove_edge t u v));
      (match Hashtbl.find_opt t.children u with
      | Some l -> l := !l @ [ v ]
      | None -> Hashtbl.replace t.children u (ref [ v ]));
      match Hashtbl.find_opt t.parents v with
      | Some tbl -> Hashtbl.replace tbl u ()
      | None ->
          let tbl = Hashtbl.create 4 in
          Hashtbl.replace tbl u ();
          Hashtbl.replace t.parents v tbl)

(** [remove_edge t u v] removes the edge if present; returns whether it
    was. Nodes are never removed here — that is the garbage collector's
    job (Section 2.3). *)
and remove_edge t u v =
  match Hashtbl.find_opt t.edges (u, v) with
  | None -> false
  | Some info ->
      Hashtbl.remove t.edges (u, v);
      mark_dirty t u;
      mark_dirty t v;
      (* inverse: reinstate the edge_info object and splice [v] back at
         its old position among [u]'s children (plain [add_edge] would
         append, losing document order) *)
      if recording t then begin
        let idx =
          match Hashtbl.find_opt t.children u with
          | Some l ->
              let rec find i = function
                | [] -> 0
                | c :: _ when c = v -> i
                | _ :: rest -> find (i + 1) rest
              in
              find 0 !l
          | None -> 0
        in
        Journal.record t.journal (fun () ->
            Hashtbl.replace t.edges (u, v) info;
            (match Hashtbl.find_opt t.children u with
            | Some l ->
                let rec splice i = function
                  | rest when i = 0 -> v :: rest
                  | [] -> [ v ]
                  | c :: rest -> c :: splice (i - 1) rest
                in
                l := splice idx !l
            | None -> Hashtbl.replace t.children u (ref [ v ]));
            match Hashtbl.find_opt t.parents v with
            | Some tbl -> Hashtbl.replace tbl u ()
            | None ->
                let tbl = Hashtbl.create 4 in
                Hashtbl.replace tbl u ();
                Hashtbl.replace t.parents v tbl)
      end;
      (match Hashtbl.find_opt t.children u with
      | Some l -> l := List.filter (fun c -> c <> v) !l
      | None -> ());
      (match Hashtbl.find_opt t.parents v with
      | Some tbl ->
          Hashtbl.remove tbl u;
          if Hashtbl.length tbl = 0 then Hashtbl.remove t.parents v
      | None -> ());
      true

(** [remove_node t id] unregisters a node with no remaining edges and
    recycles its slot. *)
let remove_node t id =
  let n = node t id in
  if children t id <> [] || parents t id <> [] then
    dag_error "remove_node %d: node still has edges" id;
  let key = (n.etype, Tuple.to_list n.attr) in
  mark_dirty t id;
  Hashtbl.remove t.nodes id;
  Hashtbl.remove t.ids key;
  Hashtbl.remove t.children id;
  Hashtbl.remove t.parents id;
  (match Hashtbl.find_opt t.gen n.etype with
  | Some reg -> Hashtbl.remove reg id
  | None -> ());
  gen_note_remove t n.etype id;
  Hashtbl.remove t.slot_ids n.slot;
  t.free_slots <- n.slot :: t.free_slots;
  (* inverse: re-register the node record and reclaim its slot from the
     free list (at replay time the slot sits at the head again, by LIFO) *)
  if recording t then
    Journal.record t.journal (fun () ->
        Hashtbl.replace t.nodes id n;
        Hashtbl.replace t.ids key id;
        Hashtbl.replace t.slot_ids n.slot id;
        let reg =
          match Hashtbl.find_opt t.gen n.etype with
          | Some r -> r
          | None ->
              let r = Hashtbl.create 64 in
              Hashtbl.replace t.gen n.etype r;
              r
        in
        Hashtbl.replace reg id ();
        gen_note_add t n.etype id;
        match t.free_slots with
        | s :: rest when s = n.slot -> t.free_slots <- rest
        | _ -> t.free_slots <- List.filter (fun s -> s <> n.slot) t.free_slots)

(** [set_provenance t u v rows] replaces the edge's derivation rows — the
    journaled entry point for provenance refresh (base-update
    reconciliation); direct mutation of {!edge_info} would bypass the
    undo journal. *)
let set_provenance t u v rows =
  let info = edge_info t u v in
  if recording t then begin
    let old = info.provenance in
    Journal.record t.journal (fun () -> info.provenance <- old)
  end;
  info.provenance <- rows

(** Node id currently occupying [slot], if any. *)
let id_of_slot t slot = Hashtbl.find_opt t.slot_ids slot

(** The id the next created node will receive; ids are allocated
    monotonically, so [id >= next_id t] later identifies fresh nodes. *)
let next_id t = t.next_id

let n_nodes t = Hashtbl.length t.nodes
let n_edges t = Hashtbl.length t.edges
let slot_capacity t = t.next_slot

let iter_nodes f t = Hashtbl.iter (fun _ n -> f n) t.nodes
let fold_nodes f t acc = Hashtbl.fold (fun _ n acc -> f n acc) t.nodes acc

let iter_edges f t = Hashtbl.iter (fun (u, v) info -> f u v info) t.edges

(** Ids registered in gen_A for a given element type. *)
let gen_ids t etype =
  match Hashtbl.find_opt t.gen etype with
  | Some reg -> Hashtbl.fold (fun id () acc -> id :: acc) reg []
  | None -> []

let gen_cardinal t etype =
  match Hashtbl.find_opt t.gen etype with
  | Some reg -> Hashtbl.length reg
  | None -> 0

type gen_view = {
  gv_ids : int array;
  gv_len : int;
  gv_version : int;
  gv_reset : int;
}

(** Ascending-sorted view of gen_A with change stamps. The returned
    array is the store's internal buffer: read slots [0, gv_len) only,
    never mutate, and re-fetch after any store mutation. Stamps contract:
    equal [gv_version] ⇒ identical contents; equal [gv_reset] ⇒ the
    earlier view's [gv_len]-prefix is a prefix of the current view. *)
let gen_view t etype =
  let gs =
    match Hashtbl.find_opt t.genseq etype with
    | Some gs -> gs
    | None ->
        let gs =
          { gs_ids = [||]; gs_len = 0; gs_dirty = true; gs_version = 1; gs_reset = 1 }
        in
        Hashtbl.replace t.genseq etype gs;
        gs
  in
  if gs.gs_dirty then begin
    let a = Array.of_list (gen_ids t etype) in
    Array.sort (fun (a : int) b -> compare a b) a;
    gs.gs_ids <- a;
    gs.gs_len <- Array.length a;
    gs.gs_dirty <- false
  end;
  {
    gv_ids = gs.gs_ids;
    gv_len = gs.gs_len;
    gv_version = gs.gs_version;
    gv_reset = gs.gs_reset;
  }

(** Per edge-relation (A, B) tuple counts — the |edge_A_B| statistics of
    Fig. 10(b). *)
let edge_relation_sizes t =
  let tbl = Hashtbl.create 16 in
  iter_edges
    (fun u v _ ->
      let key = ((node t u).etype, (node t v).etype) in
      Hashtbl.replace tbl key
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    t;
  List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl [])

(** {2 Tree materialization}

    Uncompresses the DAG below [id] into a tree — the view semantics that
    correctness statements quantify over. Subtree sizes can be exponential
    in the DAG size; [max_nodes] guards oracles against blowup. *)
let tree_of ?(max_nodes = max_int) t id =
  let budget = ref max_nodes in
  let rec go id =
    decr budget;
    if !budget < 0 then dag_error "tree_of: node budget exhausted";
    let n = node t id in
    Rxv_xml.Tree.element ?text:n.text ~uid:id n.etype
      (List.map go (children t id))
  in
  go id

let to_tree ?max_nodes t = tree_of ?max_nodes t (root t)

(** Nodes reachable from the root (ids). *)
let reachable_from_root t =
  let seen = Hashtbl.create (n_nodes t) in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter go (children t id)
    end
  in
  if t.root >= 0 then go t.root;
  seen

(* occurrences(v) = Σ occurrences(parent), root = 1: a top-down
   accumulation in parents-before-children order. Generic over the
   children accessor so live stores and frozen views share the code. *)
let occ_counts ~root ~children ~size =
  let counts = Hashtbl.create size in
  let bump id k =
    let prev = Option.value ~default:0 (Hashtbl.find_opt counts id) in
    let v = prev + k in
    Hashtbl.replace counts id (if v < 0 then max_int / 2 else v)
  in
  (* process in a topological order: parents before children *)
  let order = ref [] in
  let seen = Hashtbl.create size in
  let rec dfs id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter dfs (children id);
      order := id :: !order
    end
  in
  if root >= 0 then dfs root;
  (* !order is now parents-before-children *)
  if root >= 0 then bump root 1;
  List.iter
    (fun id ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts id) in
      if c > 0 then List.iter (fun ch -> bump ch c) (children id))
    !order;
  counts

(** Number of occurrences of each node in the uncompressed tree — used by
    the sharing statistics of Fig. 10(b). Counts are capped at
    [max_int/2] to avoid overflow on pathological DAGs. *)
let occurrence_counts t =
  occ_counts ~root:t.root ~children:(children t) ~size:(n_nodes t)

(** {2 Frozen views (MVCC snapshot reads)}

    A view is an immutable image of the node table, adjacency, and root
    over persistent maps. Freezing patches the previous image with the
    entries of every node id touched since the last freeze, so the cost
    is O(touched · log n) and untouched structure (including the node
    records and children lists themselves) is shared with the live
    store and all earlier views. *)

type view = {
  v_nodes : node Imap.t;
  v_children : int list Imap.t;
  v_parents : int list Imap.t;
  v_root : int;
  v_n_edges : int;
  v_slot_capacity : int;
}

let freeze t =
  Hashtbl.iter
    (fun id () ->
      match Hashtbl.find_opt t.nodes id with
      | Some n ->
          t.c_nodes <- Imap.add id n t.c_nodes;
          (match Hashtbl.find_opt t.children id with
          | Some l when !l <> [] -> t.c_children <- Imap.add id !l t.c_children
          | Some _ | None -> t.c_children <- Imap.remove id t.c_children);
          (match Hashtbl.find_opt t.parents id with
          | Some tbl when Hashtbl.length tbl > 0 ->
              t.c_parents <-
                Imap.add id
                  (Hashtbl.fold (fun p () acc -> p :: acc) tbl [])
                  t.c_parents
          | Some _ | None -> t.c_parents <- Imap.remove id t.c_parents)
      | None ->
          t.c_nodes <- Imap.remove id t.c_nodes;
          t.c_children <- Imap.remove id t.c_children;
          t.c_parents <- Imap.remove id t.c_parents)
    t.dirty;
  Hashtbl.reset t.dirty;
  {
    v_nodes = t.c_nodes;
    v_children = t.c_children;
    v_parents = t.c_parents;
    v_root = t.root;
    v_n_edges = Hashtbl.length t.edges;
    v_slot_capacity = t.next_slot;
  }

let view_node v id =
  match Imap.find_opt id v.v_nodes with
  | Some n -> n
  | None -> dag_error "view: unknown node id %d" id

let view_mem_node v id = Imap.mem id v.v_nodes

let view_children v id =
  Option.value ~default:[] (Imap.find_opt id v.v_children)

let view_parents v id = Option.value ~default:[] (Imap.find_opt id v.v_parents)
let view_in_degree v id = List.length (view_parents v id)

let view_root v =
  if v.v_root < 0 then dag_error "store view has no root" else v.v_root

let view_n_nodes v = Imap.cardinal v.v_nodes
let view_n_edges v = v.v_n_edges
let view_slot_capacity v = v.v_slot_capacity
let view_fold_nodes f v acc = Imap.fold (fun _ n acc -> f n acc) v.v_nodes acc

let view_occurrence_counts v =
  occ_counts ~root:v.v_root ~children:(view_children v) ~size:(view_n_nodes v)

(** {2 Durability}

    The persisted form is the full store state as plain data, ordered
    deterministically (ascending ids) so identical stores serialize to
    identical bytes. *)

type persisted_node = {
  pn_id : int;
  pn_etype : string;
  pn_attr : Tuple.t;
  pn_text : string option;
  pn_slot : int;
}

type persisted = {
  p_next_id : int;
  p_next_slot : int;
  p_free_slots : int list;
  p_root : int;
  p_nodes : persisted_node list;
  p_children : (int * int list) list;
  p_provenance : ((int * int) * Tuple.t list) list;
}

let to_persisted t =
  let nodes =
    fold_nodes
      (fun n acc ->
        {
          pn_id = n.id;
          pn_etype = n.etype;
          pn_attr = n.attr;
          pn_text = n.text;
          pn_slot = n.slot;
        }
        :: acc)
      t []
    |> List.sort (fun a b -> compare a.pn_id b.pn_id)
  in
  let child_lists =
    Hashtbl.fold (fun u l acc -> (u, !l) :: acc) t.children []
    |> List.filter (fun (_, l) -> l <> [])
    |> List.sort compare
  in
  let prov =
    Hashtbl.fold
      (fun (u, v) info acc ->
        if info.provenance = [] then acc
        else ((u, v), info.provenance) :: acc)
      t.edges []
    |> List.sort (fun (e, _) (e', _) -> compare e e')
  in
  {
    p_next_id = t.next_id;
    p_next_slot = t.next_slot;
    p_free_slots = t.free_slots;
    p_root = t.root;
    p_nodes = nodes;
    p_children = child_lists;
    p_provenance = prov;
  }

(** [of_persisted p] rebuilds a store; validates the invariants a decoder
    cannot express (unique ids/slots, counters ahead of allocations,
    edges over known nodes) and raises {!Dag_error} otherwise — recovery
    treats that as a corrupt checkpoint. *)
let of_persisted (p : persisted) =
  (* like [create], but sized for the known node/edge counts — avoids
     log(n) full-table rehashes while loading a checkpoint *)
  let n_nodes = max 16 (List.length p.p_nodes) in
  let n_edges =
    max 16 (List.fold_left (fun a (_, cs) -> a + List.length cs) 0 p.p_children)
  in
  let t =
    {
      next_id = 0;
      next_slot = 0;
      free_slots = [];
      ids = Hashtbl.create n_nodes;
      nodes = Hashtbl.create n_nodes;
      slot_ids = Hashtbl.create n_nodes;
      gen = Hashtbl.create 16;
      genseq = Hashtbl.create 8;
      children = Hashtbl.create n_nodes;
      parents = Hashtbl.create n_nodes;
      edges = Hashtbl.create n_edges;
      root = -1;
      journal = Journal.create ();
      c_nodes = Imap.empty;
      c_children = Imap.empty;
      c_parents = Imap.empty;
      dirty = Hashtbl.create n_nodes;
    }
  in
  (* the committed image starts empty; every loaded node is dirty so the
     first freeze rebuilds it *)
  List.iter (fun pn -> mark_dirty t pn.pn_id) p.p_nodes;
  t.next_id <- p.p_next_id;
  t.next_slot <- p.p_next_slot;
  t.free_slots <- p.p_free_slots;
  let free = Hashtbl.create (List.length p.p_free_slots) in
  List.iter (fun s -> Hashtbl.replace free s ()) p.p_free_slots;
  List.iter
    (fun pn ->
      if pn.pn_id < 0 || pn.pn_id >= p.p_next_id then
        dag_error "of_persisted: node id %d outside [0, %d)" pn.pn_id
          p.p_next_id;
      if pn.pn_slot < 0 || pn.pn_slot >= p.p_next_slot then
        dag_error "of_persisted: slot %d outside [0, %d)" pn.pn_slot
          p.p_next_slot;
      if Hashtbl.mem t.nodes pn.pn_id then
        dag_error "of_persisted: duplicate node id %d" pn.pn_id;
      if Hashtbl.mem t.slot_ids pn.pn_slot then
        dag_error "of_persisted: duplicate slot %d" pn.pn_slot;
      if Hashtbl.mem free pn.pn_slot then
        dag_error "of_persisted: slot %d both live and free" pn.pn_slot;
      let n =
        {
          id = pn.pn_id;
          etype = pn.pn_etype;
          attr = pn.pn_attr;
          text = pn.pn_text;
          slot = pn.pn_slot;
        }
      in
      let key = (n.etype, Tuple.to_list n.attr) in
      if Hashtbl.mem t.ids key then
        dag_error "of_persisted: duplicate identity for node %d" n.id;
      Hashtbl.replace t.ids key n.id;
      Hashtbl.replace t.nodes n.id n;
      Hashtbl.replace t.slot_ids n.slot n.id;
      let reg =
        match Hashtbl.find_opt t.gen n.etype with
        | Some r -> r
        | None ->
            let r = Hashtbl.create 64 in
            Hashtbl.replace t.gen n.etype r;
            r
      in
      Hashtbl.replace reg n.id ())
    p.p_nodes;
  let prov = Hashtbl.create (List.length p.p_provenance) in
  List.iter (fun (e, rows) -> Hashtbl.replace prov e rows) p.p_provenance;
  List.iter
    (fun (u, cs) ->
      if not (Hashtbl.mem t.nodes u) then
        dag_error "of_persisted: edge parent %d unknown" u;
      Hashtbl.replace t.children u (ref cs);
      List.iter
        (fun v ->
          if not (Hashtbl.mem t.nodes v) then
            dag_error "of_persisted: edge child %d unknown" v;
          if Hashtbl.mem t.edges (u, v) then
            dag_error "of_persisted: duplicate edge (%d, %d)" u v;
          Hashtbl.replace t.edges (u, v)
            {
              provenance =
                Option.value ~default:[] (Hashtbl.find_opt prov (u, v));
            };
          (match Hashtbl.find_opt t.parents v with
          | Some tbl -> Hashtbl.replace tbl u ()
          | None ->
              let tbl = Hashtbl.create 4 in
              Hashtbl.replace tbl u ();
              Hashtbl.replace t.parents v tbl))
        cs)
    p.p_children;
  List.iter
    (fun ((u, v), _) ->
      if not (Hashtbl.mem t.edges (u, v)) then
        dag_error "of_persisted: provenance for absent edge (%d, %d)" u v)
    p.p_provenance;
  if p.p_root >= 0 && not (Hashtbl.mem t.nodes p.p_root) then
    dag_error "of_persisted: root %d unknown" p.p_root;
  t.root <- p.p_root;
  t

(** Deep copy — snapshot support for transactional update groups. *)
let copy t =
  let copy_tbl tbl = Hashtbl.copy tbl in
  let dirty = Hashtbl.create (max 16 (Hashtbl.length t.nodes)) in
  Hashtbl.iter (fun id _ -> Hashtbl.replace dirty id ()) t.nodes;
  {
    next_id = t.next_id;
    next_slot = t.next_slot;
    free_slots = t.free_slots;
    ids = copy_tbl t.ids;
    nodes = copy_tbl t.nodes;
    slot_ids = copy_tbl t.slot_ids;
    gen =
      (let g = Hashtbl.create (Hashtbl.length t.gen) in
       Hashtbl.iter (fun k v -> Hashtbl.replace g k (Hashtbl.copy v)) t.gen;
       g);
    genseq = Hashtbl.create 8;
    children =
      (let c = Hashtbl.create (Hashtbl.length t.children) in
       Hashtbl.iter (fun k v -> Hashtbl.replace c k (ref !v)) t.children;
       c);
    parents =
      (let p = Hashtbl.create (Hashtbl.length t.parents) in
       Hashtbl.iter (fun k v -> Hashtbl.replace p k (Hashtbl.copy v)) t.parents;
       p);
    edges =
      (let e = Hashtbl.create (Hashtbl.length t.edges) in
       Hashtbl.iter
         (fun k info -> Hashtbl.replace e k { provenance = info.provenance })
         t.edges;
       e);
    root = t.root;
    journal = Journal.create ();
    c_nodes = Imap.empty;
    c_children = Imap.empty;
    c_parents = Imap.empty;
    dirty;
  }
