(** The reachability matrix M (Section 3.1) and Algorithm Reach (Fig. 4).
    M(anc, desc) holds exactly when [anc] is a proper ancestor of [desc];
    stored as one slot-indexed {!Bitset} per node, so Algorithm Reach's
    inner union is a word-wise OR, [is_ancestor] a bit test, |M| a
    popcount and [descendants] an indexed reverse lookup. Bound to the
    store that assigns the slots. *)

type t

val create : Store.t -> t
(** an empty matrix bound to [store]'s slot assignment *)

val journal : t -> Rxv_relational.Journal.t
(** the matrix's undo journal. In-place row mutators copy-on-write each
    touched row once per frame; replace-style mutators save the old row
    object outright. *)

val begin_ : t -> unit
(** open a (possibly nested) transaction frame *)

val commit : t -> unit
(** keep the frame's effects (folding its inverses into any parent
    frame). @raise Rxv_relational.Journal.No_transaction without a frame *)

val abort : t -> unit
(** restore every row touched since the matching {!begin_} — O(touched
    rows), not O(|M|) — and invalidate the lazy descendant index.
    @raise Rxv_relational.Journal.No_transaction without a frame *)

val slot_of : t -> int -> int
(** the slot of a live node id — for callers assembling slot sets to
    query with {!anc_intersects} / {!union_row_into}.
    @raise Store.Dag_error for unknown ids. *)

val is_ancestor : t -> int -> int -> bool
(** [is_ancestor m a d]: is [a] a proper ancestor of [d]? One bit test;
    false when either id is not live. *)

val is_ancestor_or_self : t -> int -> int -> bool

val ancestors : t -> int -> int list
val iter_ancestors : (int -> unit) -> t -> int -> unit

val n_ancestors : t -> int -> int
(** |anc(d)|: a popcount over d's row *)

val descendants : t -> int -> int list
(** indexed reverse lookup. The reverse matrix is rebuilt (O(|M|)) on the
    first query after a mutation — nothing on the maintenance hot path
    pays for it — then each query is O(|desc(a)|). *)

val iter_descendants : (int -> unit) -> t -> int -> unit

val size : t -> int
(** |M|: total (anc, desc) pairs, by popcount *)

val add_pair : t -> int -> int -> unit
val remove_pair : t -> int -> int -> unit

val remove_row : t -> int -> unit
(** forget a removed node's row before its slot is recycled; pairs with
    the node on the ancestor side are the caller's responsibility
    (Δ(M,L)delete rebuilds every affected descendant row first) *)

val absorb_parents : t -> int -> parents:int list -> int
(** [absorb_parents m d ~parents]: anc(d) ∪= ∪_p ({p} ∪ anc(p)), the
    row-growing ΔM step of Δ(M,L)insert (Fig. 7), word-wise. Returns the
    number of M pairs added. *)

val replace_row_from_parents : t -> int -> parents:int list -> int
(** [replace_row_from_parents m d ~parents]: anc(d) := ∪_p ({p} ∪ anc(p)),
    the row-rebuilding ΔM step of Δ(M,L)delete (Fig. 8). Returns the net
    number of M pairs removed. *)

val anc_intersects : t -> int -> Bitset.t -> bool
(** does anc(id) meet the given slot set? One word-wise intersection. *)

val union_row_into : t -> int -> dst:Bitset.t -> unit
(** dst ∪= anc(id), word-wise *)

val compute : Store.t -> Topo.t -> t
(** Algorithm Reach: processing L backwards guarantees every parent's set
    is final when a node is reached, so
    anc(d) = ∪_(p ∈ parent(d)) ({p} ∪ anc(p)) — each union one word-wise
    OR over the parent's row. *)

val equal : t -> t -> Store.t -> bool
(** extensional equality — the "incremental ≡ recomputation" oracle; both
    matrices must share [store]'s slot assignment *)

val copy : store:Store.t -> t -> t
(** deep copy (per-row word-array blits) bound to the given — typically
    freshly copied — store; {!Store.copy} preserves slot assignments *)

(** {2 Frozen views} *)

type view
(** an immutable image of M, addressed by slot. Freezing is O(1); the
    live matrix then pays one shallow pointer-array copy on its first
    write plus one row copy per row actually touched — O(touched rows)
    per writer batch. Pair with the {!Store.view} frozen at the same
    quiescent instant for the slot↔id mapping. *)

val freeze : t -> view
(** capture with no transaction frame open to get committed state *)

val view_anc_intersects : view -> int -> Bitset.t -> bool
(** does anc(slot) meet the given dense slot set? *)

val view_union_row_into : view -> int -> dst:Bitset.t -> unit
(** dst ∪= anc(slot), word-wise *)

val view_size : view -> int
(** |M| at capture, by popcount *)
