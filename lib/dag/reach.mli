(** The reachability matrix M (Section 3.1) and Algorithm Reach (Fig. 4).
    M(anc, desc) holds exactly when [anc] is a proper ancestor of [desc];
    stored sparsely (one ancestor set per node) because |M| ≪ n² on
    realistic hierarchies (Fig. 10(b)). *)

type row = (int, unit) Hashtbl.t
(** a node's proper ancestors, by id *)

type t = { rows : (int, row) Hashtbl.t }

val empty : unit -> t

val row : t -> int -> row
(** creating an empty row on first access *)

val row_opt : t -> int -> row option

val is_ancestor : t -> int -> int -> bool
(** [is_ancestor m a d]: is [a] a proper ancestor of [d]? O(1). *)

val is_ancestor_or_self : t -> int -> int -> bool

val ancestors : t -> int -> int list
val iter_ancestors : (int -> unit) -> t -> int -> unit
val n_ancestors : t -> int -> int

val descendants : t -> int -> int list
(** O(|M|) scan; the evaluator avoids this direction *)

val size : t -> int
(** |M|: total (anc, desc) pairs *)

val add_pair : t -> int -> int -> unit
val remove_pair : t -> int -> int -> unit
val remove_row : t -> int -> unit
val union_into : dst:row -> row -> unit

val compute : Store.t -> Topo.t -> t
(** Algorithm Reach: processing L backwards guarantees every parent's set
    is final when a node is reached, so
    anc(d) = ∪_(p ∈ parent(d)) ({p} ∪ anc(p)). O(n·|V|) worst case,
    linear in |M| in practice. *)

val equal : t -> t -> Store.t -> bool
(** extensional equality — the "incremental ≡ recomputation" oracle *)

val copy : t -> t
(** deep copy — snapshot support for transactional update groups *)
