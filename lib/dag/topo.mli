(** The topological order L of Section 3.1: every distinct node, with u
    preceding v only if u is not an ancestor of v — descendants first,
    root last. Algorithm Reach consumes L backwards; the bottom-up XPath
    pass consumes it forwards. Supports the maintenance operations of
    Section 3.4: ordinal comparison, the paper's [swap(L, u, v)] move,
    tombstoned removal and pivot-based merging. *)

type t

exception Topo_error of string

val journal : t -> Rxv_relational.Journal.t
(** the order's undo journal; mutators record exact inverses while a
    frame is open. Auto-compaction is deferred while a frame is open. *)

val begin_ : t -> unit
(** open a (possibly nested) transaction frame *)

val commit : t -> unit
(** keep the frame's effects (folding its inverses into any parent
    frame). @raise Rxv_relational.Journal.No_transaction without a frame *)

val abort : t -> unit
(** undo every removal/swap/splice since the matching {!begin_}, in O(Δ)
    for removals and swaps (splices restore a saved prefix, matching the
    cost of the splice itself).
    @raise Rxv_relational.Journal.No_transaction without a frame *)

val of_ids : int list -> t
val of_store : Store.t -> t
(** post-order DFS from the root (iterative, deep-DAG safe), O(|V|);
    detached nodes are placed first *)

val mem : t -> int -> bool

val ord : t -> int -> int
(** ordinal consistent with L. @raise Topo_error for absent nodes. *)

val is_before : t -> int -> int -> bool
val live_count : t -> int
val to_list : t -> int list

val iter : (int -> unit) -> t -> unit
(** forward: leaves first *)

val iter_backward : (int -> unit) -> t -> unit
(** root side first — the order Reach and the delete maintenance use *)

val remove : t -> int -> unit
(** O(1) tombstone; the array compacts when more than half dead *)

val swap : t -> int -> int -> is_desc_of_v:(int -> bool) -> unit
(** the paper's [swap(L, u, v)]: given an inserted edge (u, v) with
    ord u < ord v, move the nodes of L[u:v] that are descendants-or-self
    of v immediately in front of u, preserving relative order within both
    groups. [is_desc_of_v] must answer against the *updated* reachability.
    O(|L[u:v]|). *)

val insert_before : t -> (int * int) list -> unit
(** splice new nodes before their anchors (Fig. 7 line 14's merge); ids
    sharing an anchor keep their list order. One array rebuild. *)

val is_valid : t -> Store.t -> bool
(** test oracle: every edge's child precedes its parent and |L| = n *)

val pp : Format.formatter -> t -> unit

val copy : t -> t
(** deep copy — used by test oracles; the copy gets a fresh journal *)

(** {2 Frozen views} *)

type view
(** an immutable image of the order. Freezing is O(1) — the next
    in-place mutation of the live order pays one shallow array copy
    (lazy copy-on-write), later ones are free. *)

val freeze : t -> view

val view_iter : (int -> unit) -> view -> unit
(** forward: leaves first *)

val view_live_count : view -> int
