(** Incremental maintenance of the auxiliary structures (Section 3.4):
    Algorithm Δ(M,L)insert (Fig. 7) and Algorithm Δ(M,L)delete (Fig. 8),
    plus the background garbage collection of Section 2.3.

    Both entry points are called *after* the store's edge relations have
    been updated by Xinsert/Xdelete, which matches the framework of
    Fig. 3: the relational update is carried out first and maintenance
    runs in the background.

    One deliberate generalization over Fig. 7: lines 12–13 of the paper
    reposition only rA relative to the targets; when the inserted subtree
    shares *interior* nodes with the existing view, those common nodes can
    also sit after a target in L. We therefore apply the same
    swap-based fix to every common subtree node, which is required for L
    to stay valid under arbitrary sharing (property-tested against
    recomputation). *)

type insert_stats = {
  m_pairs_added : int;
  common_nodes : int;
  merged_nodes : int;
  touched : int list;
      (** nodes whose Δ(M,L) rows this update visited (subtree ∪ targets)
          — the seed set for dirtying cached DP rows: every other node's
          bottom-up value depends only on descendants outside this set *)
}

type delete_stats = {
  m_pairs_removed : int;
  cascade_edges : (int * int) list;
      (** Δ'V: edges of fully-deleted nodes, removed by the collector *)
  deleted_nodes : int list;
  touched : int list;
      (** desc-or-self of the targets (including the nodes then deleted)
          — the seed set for dirtying cached DP rows *)
  deleted_slots : int list;
      (** store slots freed by [deleted_nodes], captured before removal:
          the store recycles slots, so cached per-slot rows must be
          dirtied even though the ids are gone *)
}

(* Descendants-or-self of [roots] via the (current) adjacency, as a set. *)
let desc_or_self_set store roots =
  let seen = Hashtbl.create 64 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter go (Store.children store id)
    end
  in
  List.iter go roots;
  seen

(* LA (the subtree order of Fig. 7) as a scratch structure: the same
   array + position-map shape as {!Topo}, but positions live in a small
   hashtable. LA holds a handful of subtree nodes whose ids sit at the
   top of the id space, so reusing the main structure's dense id-indexed
   position array would cost an O(max id) allocation per update —
   measured to dominate Δ(M,L)insert at |C| = 100K. No tombstones: LA is
   built fresh per update and only swapped. *)
module Scratch = struct
  type t = { arr : int array; pos : (int, int) Hashtbl.t }

  let of_ids ids =
    let arr = Array.of_list ids in
    let pos = Hashtbl.create (2 * Array.length arr) in
    Array.iteri (fun i id -> Hashtbl.replace pos id i) arr;
    { arr; pos }

  let mem t id = Hashtbl.mem t.pos id
  let ord t id = Hashtbl.find t.pos id

  (* the paper's swap(L,u,v), as in {!Topo.swap} *)
  let swap t u v ~is_desc_of_v =
    let iu = ord t u and iv = ord t v in
    if iu < iv then begin
      let moved = ref [] and kept = ref [] in
      for i = iv downto iu do
        let id = t.arr.(i) in
        if id = v || is_desc_of_v id then moved := id :: !moved
        else kept := id :: !kept
      done;
      List.iteri
        (fun off id ->
          t.arr.(iu + off) <- id;
          Hashtbl.replace t.pos id (iu + off))
        (!moved @ !kept)
    end

  let to_list t = Array.to_list t.arr
end

(* Post-order (descendants-first) topological order of the subtree rooted
   at [root_id], as an id list. *)
let subtree_order store root_id =
  let seen = Hashtbl.create 64 in
  let order = ref [] in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      List.iter go (Store.children store id);
      order := id :: !order
    end
  in
  go root_id;
  List.rev !order

(** Algorithm Δ(M,L)insert. [targets] is r[[p]]; [root_id] is rA;
    [new_nodes] are the subtree nodes that did not exist before the
    insertion (so NC = subtree \ new_nodes). The store must already
    contain the subtree and the (target, rA) connection edges. *)
let on_insert (store : Store.t) (l : Topo.t) (m : Reach.t) ~targets ~root_id
    ~new_nodes : insert_stats =
  let la_list = subtree_order store root_id in
  let new_set = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace new_set id ()) new_nodes;
  let target_set = Hashtbl.create 8 in
  List.iter (fun id -> Hashtbl.replace target_set id ()) targets;
  let in_subtree = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace in_subtree id ()) la_list;
  (* --- ΔM (Fig. 7 lines 3-5): process subtree ancestors-first (la_list
     is descendants-first, so reversed); a node's new ancestors are its
     parents inside the subtree or among the targets, whose rows are
     already final. Rows only grow — each union a word-wise OR. *)
  let pairs_added = ref 0 in
  List.iter
    (fun d ->
      let parents =
        List.filter
          (fun p -> Hashtbl.mem in_subtree p || Hashtbl.mem target_set p)
          (Store.parents store d)
      in
      if parents <> [] then
        pairs_added := !pairs_added + Reach.absorb_parents m d ~parents)
    (List.rev la_list);
  (* --- L maintenance --- *)
  let is_desc_of v x = Reach.is_ancestor m v x in
  (* common nodes, in subtree (descendants-first) order *)
  let nc = List.filter (fun id -> not (Hashtbl.mem new_set id)) la_list in
  (* LNC: order NC by the *updated* ancestor relation (combined
     constraints of T and ST), descendants first. *)
  let la = Scratch.of_ids la_list in
  let lnc =
    let arr = Array.of_list nc in
    let n = Array.length arr in
    let adj = Array.make n [] and indeg = Array.make n 0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j && Reach.is_ancestor m arr.(j) arr.(i) then begin
          (* arr.(j) ancestor of arr.(i): i must precede j *)
          adj.(i) <- j :: adj.(i);
          indeg.(j) <- indeg.(j) + 1
        end
      done
    done;
    let queue = Queue.create () in
    for i = 0 to n - 1 do
      if indeg.(i) = 0 then Queue.add i queue
    done;
    let out = ref [] in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      out := arr.(i) :: !out;
      List.iter
        (fun j ->
          indeg.(j) <- indeg.(j) - 1;
          if indeg.(j) = 0 then Queue.add j queue)
        adj.(i)
    done;
    List.rev !out
  in
  (* Alignment (Fig. 7 lines 8-11), right to left. BOTH lists are aligned
     with LNC, as in the paper: the merge below anchors each new node to
     the next pivot in LA, which is only sound when L and LA agree on the
     relative order of pivots — two valid topological orders may disagree
     on unrelated pairs, so agreement must be enforced, not assumed. *)
  let lnc_arr = Array.of_list lnc in
  for k = Array.length lnc_arr - 1 downto 1 do
    let u = lnc_arr.(k) and v = lnc_arr.(k - 1) in
    if Scratch.mem la u && Scratch.mem la v && Scratch.ord la u < Scratch.ord la v
    then Scratch.swap la u v ~is_desc_of_v:(is_desc_of v);
    if Topo.mem l u && Topo.mem l v && Topo.ord l u < Topo.ord l v then
      Topo.swap l u v ~is_desc_of_v:(is_desc_of v)
  done;
  (* Generalized lines 12-13: every already-present subtree node must end
     up before every target it now descends from. *)
  List.iter
    (fun p ->
      if Topo.mem l p then
        List.iter
          (fun u ->
            if Topo.mem l u && Topo.ord l u < Topo.ord l p then
              Topo.swap l u p ~is_desc_of_v:(is_desc_of p))
          targets)
    nc;
  (* Merge (line 14): insert each new node before its next pivot in LA;
     nodes with no following pivot go before the lowest-ordered target. *)
  let fallback_anchor =
    match targets with
    | [] -> None
    | t0 :: rest ->
        Some
          (List.fold_left
             (fun best u -> if Topo.ord l u < Topo.ord l best then u else best)
             t0 rest)
  in
  let anchored = ref [] in
  let rec assign = function
    | [] -> ()
    | id :: rest ->
        if Hashtbl.mem new_set id && not (Topo.mem l id) then begin
          let anchor =
            match List.find_opt (fun x -> Topo.mem l x) rest with
            | Some pivot -> Some pivot
            | None -> fallback_anchor
          in
          match anchor with
          | Some a -> anchored := (id, a) :: !anchored
          | None -> raise (Topo.Topo_error (Printf.sprintf "insert maintenance: no anchor for %d" id))
        end;
        assign rest
  in
  assign (Scratch.to_list la);
  Topo.insert_before l (List.rev !anchored);
  {
    m_pairs_added = !pairs_added;
    common_nodes = List.length nc;
    merged_nodes = List.length !anchored;
    touched = List.rev_append targets la_list;
  }

(** Algorithm Δ(M,L)delete. [targets] is r[[p]]; the Ep(r) edges must
    already be removed from the store. Recomputes ancestor rows for
    desc-or-self of the targets (ancestors first), cascades the removal of
    orphaned nodes (Δ'V — the background garbage collection of Section
    2.3), and removes dead entries from L, M and the gen registries. *)
let on_delete (store : Store.t) (l : Topo.t) (m : Reach.t) ~targets :
    delete_stats =
  let lr_set = desc_or_self_set store targets in
  (* LR sorted by L, traversed backward = ancestors first. Sorting the
     (small) descendant set by ordinal is O(|LR| log |LR|); scanning all
     of L per operation would be O(|V|). *)
  let lr =
    let ids =
      Hashtbl.fold
        (fun id () acc -> if Topo.mem l id then id :: acc else acc)
        lr_set []
    in
    List.sort (fun a b -> compare (Topo.ord l b) (Topo.ord l a)) ids
  in
  let keep = Hashtbl.create 64 in
  (* absent = true; false once deleted *)
  let is_kept a = Option.value ~default:true (Hashtbl.find_opt keep a) in
  let pairs_removed = ref 0 in
  let cascade = ref [] in
  let deleted = ref [] in
  let deleted_slots = ref [] in
  let root = Store.root store in
  List.iter
    (fun d ->
      if d <> root then begin
        let pd = List.filter is_kept (Store.parents store d) in
        (* rebuild d's ancestor row from its kept parents, word-wise *)
        pairs_removed :=
          !pairs_removed + Reach.replace_row_from_parents m d ~parents:pd;
        if pd = [] then begin
          Hashtbl.replace keep d false;
          deleted := d :: !deleted;
          deleted_slots := (Store.node store d).Store.slot :: !deleted_slots;
          Topo.remove l d;
          List.iter
            (fun d' ->
              cascade := (d, d') :: !cascade;
              ignore (Store.remove_edge store d d'))
            (Store.children store d)
        end
      end)
    lr;
  (* final removal: nodes are edge-free now *)
  List.iter
    (fun d ->
      Reach.remove_row m d;
      Store.remove_node store d)
    !deleted;
  {
    m_pairs_removed = !pairs_removed;
    cascade_edges = List.rev !cascade;
    deleted_nodes = !deleted;
    touched = lr;
    deleted_slots = !deleted_slots;
  }

(** Full recomputation of both structures — the baseline that Table 1
    compares incremental maintenance against. *)
let recompute (store : Store.t) : Topo.t * Reach.t =
  let l = Topo.of_store store in
  (l, Reach.compute store l)

(** Full-scan garbage collector: removes every node unreachable from the
    root. The incremental path (Fig. 8) should leave nothing for this to
    find; tests assert as much. Returns the ids removed. *)
let collect_garbage (store : Store.t) (l : Topo.t) (m : Reach.t) =
  let reachable = Store.reachable_from_root store in
  let dead =
    Store.fold_nodes
      (fun n acc ->
        if Hashtbl.mem reachable n.Store.id then acc else n.Store.id :: acc)
      store []
  in
  List.iter
    (fun id ->
      List.iter (fun c -> ignore (Store.remove_edge store id c)) (Store.children store id);
      List.iter (fun p -> ignore (Store.remove_edge store p id)) (Store.parents store id))
    dead;
  List.iter
    (fun id ->
      Topo.remove l id;
      Reach.remove_row m id;
      Store.remove_node store id)
    dead;
  dead
