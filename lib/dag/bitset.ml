(** Growable bitsets over dense integer indexes.

    The reachability matrix M (Section 3.1) is stored as one ancestor
    bitset per node, indexed by node *slots* (dense indexes handed out by
    the store). Algorithm Reach's inner loop — "ancestors of d include all
    ancestors of d's parents" — becomes a word-wise union. *)

type t = { mutable data : Bytes.t }

let create () = { data = Bytes.make 8 '\000' }

let capacity t = Bytes.length t.data * 8

let ensure t bit =
  if bit >= capacity t then begin
    let nbytes = max (Bytes.length t.data * 2) ((bit / 8) + 1) in
    let data = Bytes.make nbytes '\000' in
    Bytes.blit t.data 0 data 0 (Bytes.length t.data);
    t.data <- data
  end

let set t bit =
  ensure t bit;
  let i = bit lsr 3 and m = 1 lsl (bit land 7) in
  Bytes.unsafe_set t.data i
    (Char.chr (Char.code (Bytes.unsafe_get t.data i) lor m))

let clear t bit =
  if bit < capacity t then begin
    let i = bit lsr 3 and m = 1 lsl (bit land 7) in
    Bytes.unsafe_set t.data i
      (Char.chr (Char.code (Bytes.unsafe_get t.data i) land lnot m))
  end

let get t bit =
  if bit >= capacity t then false
  else
    let i = bit lsr 3 and m = 1 lsl (bit land 7) in
    Char.code (Bytes.unsafe_get t.data i) land m <> 0

(** [union_into ~dst src]: dst := dst ∪ src. *)
let union_into ~dst src =
  let sn = Bytes.length src.data in
  if sn * 8 > capacity dst then ensure dst ((sn * 8) - 1);
  for i = 0 to sn - 1 do
    let b = Char.code (Bytes.unsafe_get src.data i) in
    if b <> 0 then
      Bytes.unsafe_set dst.data i
        (Char.chr (Char.code (Bytes.unsafe_get dst.data i) lor b))
  done

let copy t = { data = Bytes.copy t.data }

let is_empty t =
  let n = Bytes.length t.data in
  let rec go i = i >= n || (Char.code (Bytes.unsafe_get t.data i) = 0 && go (i + 1)) in
  go 0

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun b -> tbl.(b)

(** Number of set bits. *)
let count t =
  let n = Bytes.length t.data in
  let c = ref 0 in
  for i = 0 to n - 1 do
    c := !c + popcount_byte (Char.code (Bytes.unsafe_get t.data i))
  done;
  !c

(** [iter f t] applies [f] to every set bit index, ascending. *)
let iter f t =
  let n = Bytes.length t.data in
  for i = 0 to n - 1 do
    let b = Char.code (Bytes.unsafe_get t.data i) in
    if b <> 0 then
      for j = 0 to 7 do
        if b land (1 lsl j) <> 0 then f ((i * 8) + j)
      done
  done

let fold f t acc =
  let acc = ref acc in
  iter (fun bit -> acc := f bit !acc) t;
  !acc

let to_list t = List.rev (fold (fun b acc -> b :: acc) t [])

(** [intersects a b] is true when a ∩ b ≠ ∅. *)
let intersects a b =
  let n = min (Bytes.length a.data) (Bytes.length b.data) in
  let rec go i =
    i < n
    && (Char.code (Bytes.unsafe_get a.data i)
        land Char.code (Bytes.unsafe_get b.data i)
        <> 0
       || go (i + 1))
  in
  go 0

let equal a b =
  let na = Bytes.length a.data and nb = Bytes.length b.data in
  let n = max na nb in
  let byte t i = if i < Bytes.length t.data then Char.code (Bytes.get t.data i) else 0 in
  let rec go i = i >= n || (byte a i = byte b i && go (i + 1)) in
  go 0
