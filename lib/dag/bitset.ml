(** Growable bitsets over dense integer indexes, stored word-wise.

    The reachability matrix M (Section 3.1) is stored as one ancestor
    bitset per node, indexed by node *slots* (dense indexes handed out by
    the store). Algorithm Reach's inner loop — "ancestors of d include all
    ancestors of d's parents" — becomes a word-wise OR, [is_ancestor] a
    single bit test and |anc(d)| a popcount. The bottom-up XPath pass uses
    the same module for its per-(filter, suffix) satisfaction tables.

    Words are native OCaml ints, 63 usable bits each; all bulk operations
    (union, difference, intersection test, equality, popcount, set-bit
    iteration) touch whole words, never individual bits. *)

type t = { mutable words : int array }

let bits_per_word = Sys.int_size (* 63 on 64-bit platforms *)

let create () = { words = [||] }

let capacity t = Array.length t.words * bits_per_word

let ensure t bit =
  if bit >= capacity t then begin
    let nwords =
      max (2 * Array.length t.words) ((bit / bits_per_word) + 1)
    in
    let words = Array.make nwords 0 in
    Array.blit t.words 0 words 0 (Array.length t.words);
    t.words <- words
  end

let set t bit =
  ensure t bit;
  let w = bit / bits_per_word and b = bit mod bits_per_word in
  Array.unsafe_set t.words w (Array.unsafe_get t.words w lor (1 lsl b))

let clear t bit =
  if bit < capacity t then begin
    let w = bit / bits_per_word and b = bit mod bits_per_word in
    Array.unsafe_set t.words w
      (Array.unsafe_get t.words w land lnot (1 lsl b))
  end

let get t bit =
  let w = bit / bits_per_word in
  if w >= Array.length t.words then false
  else (Array.unsafe_get t.words w lsr (bit mod bits_per_word)) land 1 = 1

(* Index one past the last nonzero word — the effective length, so bulk
   operations never grow a destination for trailing zeros. *)
let used_words t =
  let rec go i = if i >= 0 && Array.unsafe_get t.words i = 0 then go (i - 1) else i + 1 in
  go (Array.length t.words - 1)

(** [union_into ~dst src]: dst := dst ∪ src, one OR per word. *)
let union_into ~dst src =
  let sn = used_words src in
  if sn > 0 then begin
    if sn * bits_per_word > capacity dst then ensure dst ((sn * bits_per_word) - 1);
    let d = dst.words and s = src.words in
    for i = 0 to sn - 1 do
      Array.unsafe_set d i (Array.unsafe_get d i lor Array.unsafe_get s i)
    done
  end

(** [diff_into ~dst src]: dst := dst \ src, one AND-NOT per word. *)
let diff_into ~dst src =
  let n = min (Array.length dst.words) (Array.length src.words) in
  let d = dst.words and s = src.words in
  for i = 0 to n - 1 do
    Array.unsafe_set d i (Array.unsafe_get d i land lnot (Array.unsafe_get s i))
  done

let copy t = { words = Array.copy t.words }

let is_empty t =
  let n = Array.length t.words in
  let rec go i = i >= n || (Array.unsafe_get t.words i = 0 && go (i + 1)) in
  go 0

(* 16-bit-table popcount: four lookups per word. (The usual SWAR masks do
   not fit OCaml's 63-bit int literals.) *)
let popcount_word =
  let tbl = Bytes.make 65536 '\000' in
  for i = 1 to 65535 do
    Bytes.unsafe_set tbl i
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get tbl (i lsr 1)) + (i land 1)))
  done;
  fun w ->
    Char.code (Bytes.unsafe_get tbl (w land 0xFFFF))
    + Char.code (Bytes.unsafe_get tbl ((w lsr 16) land 0xFFFF))
    + Char.code (Bytes.unsafe_get tbl ((w lsr 32) land 0xFFFF))
    + Char.code (Bytes.unsafe_get tbl ((w lsr 48) land 0x7FFF))

(** Number of set bits. *)
let pop_count t =
  let n = Array.length t.words in
  let c = ref 0 in
  for i = 0 to n - 1 do
    let w = Array.unsafe_get t.words i in
    if w <> 0 then c := !c + popcount_word w
  done;
  !c

let count = pop_count

(** [iter_bits t f] applies [f] to every set bit index, ascending. Each
    word is consumed by isolating its lowest set bit ([w land -w]), whose
    index is the popcount of [lsb - 1]. *)
let iter_bits t f =
  let n = Array.length t.words in
  for i = 0 to n - 1 do
    let w = ref (Array.unsafe_get t.words i) in
    if !w <> 0 then begin
      let base = i * bits_per_word in
      while !w <> 0 do
        let lsb = !w land - !w in
        f (base + popcount_word (lsb - 1));
        w := !w land (!w - 1)
      done
    end
  done

let iter f t = iter_bits t f

let fold f t acc =
  let acc = ref acc in
  iter_bits t (fun bit -> acc := f bit !acc);
  !acc

let to_list t = List.rev (fold (fun b acc -> b :: acc) t [])

(** [intersects a b] is true when a ∩ b ≠ ∅. *)
let intersects a b =
  let n = min (Array.length a.words) (Array.length b.words) in
  let rec go i =
    i < n
    && (Array.unsafe_get a.words i land Array.unsafe_get b.words i <> 0
       || go (i + 1))
  in
  go 0

(* Equality is extensional: trailing zero words are ignored, so two sets
   holding the same bits are equal whatever their grown capacities. *)
let equal a b =
  let na = Array.length a.words and nb = Array.length b.words in
  let n = max na nb in
  let word t i = if i < Array.length t.words then Array.unsafe_get t.words i else 0 in
  let rec go i = i >= n || (word a i = word b i && go (i + 1)) in
  go 0

type dense = t

(** Sparse bitsets: only the nonzero words are stored, as parallel sorted
    arrays of (word index, word). The reachability matrix M keeps one of
    these per node: ancestor sets are ~0.01% dense at 100K nodes (|M| ≪ n²,
    the paper's premise), so a dense row of n/63 words per node costs
    O(n²) memory overall — gigabytes at 100K, which loses to cache misses
    and GC pressure everything the word-wise ops gained. Sparse rows keep
    the word-at-a-time unions/popcounts/bit-tests while storing only
    |row|/63-ish words. Membership is a binary search + bit test; unions
    are sorted merges of nonzero words. *)
module Sparse = struct
  type t = {
    mutable n : int;  (** used entries *)
    mutable idx : int array;  (** strictly increasing word indexes *)
    mutable w : int array;  (** matching words; invariant: never 0 *)
  }

  let create () = { n = 0; idx = [||]; w = [||] }

  (* first position p in idx[0..n-1] with idx.(p) >= i *)
  let lower_bound t i =
    let lo = ref 0 and hi = ref t.n in
    while !lo < !hi do
      let mid = (!lo + !hi) lsr 1 in
      if Array.unsafe_get t.idx mid < i then lo := mid + 1 else hi := mid
    done;
    !lo

  let get t bit =
    let i = bit / bits_per_word in
    let p = lower_bound t i in
    p < t.n
    && Array.unsafe_get t.idx p = i
    && (Array.unsafe_get t.w p lsr (bit mod bits_per_word)) land 1 = 1

  let ensure_cap t extra =
    if t.n + extra > Array.length t.idx then begin
      let cap = max 4 (max (t.n + extra) (2 * Array.length t.idx)) in
      let idx = Array.make cap 0 and w = Array.make cap 0 in
      Array.blit t.idx 0 idx 0 t.n;
      Array.blit t.w 0 w 0 t.n;
      t.idx <- idx;
      t.w <- w
    end

  let set t bit =
    let i = bit / bits_per_word and m = 1 lsl (bit mod bits_per_word) in
    if t.n > 0 && i = t.idx.(t.n - 1) then t.w.(t.n - 1) <- t.w.(t.n - 1) lor m
    else if t.n = 0 || i > t.idx.(t.n - 1) then begin
      (* append fast path: ascending insertion (e.g. building the reverse
         index in slot order) never shifts *)
      ensure_cap t 1;
      t.idx.(t.n) <- i;
      t.w.(t.n) <- m;
      t.n <- t.n + 1
    end
    else begin
      let p = lower_bound t i in
      if p < t.n && t.idx.(p) = i then t.w.(p) <- t.w.(p) lor m
      else begin
        ensure_cap t 1;
        Array.blit t.idx p t.idx (p + 1) (t.n - p);
        Array.blit t.w p t.w (p + 1) (t.n - p);
        t.idx.(p) <- i;
        t.w.(p) <- m;
        t.n <- t.n + 1
      end
    end

  let clear t bit =
    let i = bit / bits_per_word in
    let p = lower_bound t i in
    if p < t.n && t.idx.(p) = i then begin
      let w' = t.w.(p) land lnot (1 lsl (bit mod bits_per_word)) in
      if w' <> 0 then t.w.(p) <- w'
      else begin
        Array.blit t.idx (p + 1) t.idx p (t.n - p - 1);
        Array.blit t.w (p + 1) t.w p (t.n - p - 1);
        t.n <- t.n - 1
      end
    end

  let is_empty t = t.n = 0

  (** dst := dst ∪ src — a sorted merge of the nonzero words, ORing where
      the word indexes collide. *)
  let union_into ~dst src =
    if src.n > 0 then
      if dst.n = 0 then begin
        ensure_cap dst src.n;
        Array.blit src.idx 0 dst.idx 0 src.n;
        Array.blit src.w 0 dst.w 0 src.n;
        dst.n <- src.n
      end
      else begin
        let ni = Array.make (dst.n + src.n) 0
        and nw = Array.make (dst.n + src.n) 0 in
        let a = ref 0 and b = ref 0 and k = ref 0 in
        while !a < dst.n && !b < src.n do
          let ia = dst.idx.(!a) and ib = src.idx.(!b) in
          if ia < ib then begin
            ni.(!k) <- ia;
            nw.(!k) <- dst.w.(!a);
            incr a
          end
          else if ib < ia then begin
            ni.(!k) <- ib;
            nw.(!k) <- src.w.(!b);
            incr b
          end
          else begin
            ni.(!k) <- ia;
            nw.(!k) <- dst.w.(!a) lor src.w.(!b);
            incr a;
            incr b
          end;
          incr k
        done;
        while !a < dst.n do
          ni.(!k) <- dst.idx.(!a);
          nw.(!k) <- dst.w.(!a);
          incr a;
          incr k
        done;
        while !b < src.n do
          ni.(!k) <- src.idx.(!b);
          nw.(!k) <- src.w.(!b);
          incr b;
          incr k
        done;
        dst.idx <- ni;
        dst.w <- nw;
        dst.n <- !k
      end

  let copy t =
    { n = t.n; idx = Array.sub t.idx 0 t.n; w = Array.sub t.w 0 t.n }

  let pop_count t =
    let c = ref 0 in
    for p = 0 to t.n - 1 do
      c := !c + popcount_word (Array.unsafe_get t.w p)
    done;
    !c

  let iter_bits t f =
    for p = 0 to t.n - 1 do
      let base = t.idx.(p) * bits_per_word in
      let w = ref t.w.(p) in
      while !w <> 0 do
        let lsb = !w land - !w in
        f (base + popcount_word (lsb - 1));
        w := !w land (!w - 1)
      done
    done

  let to_list t =
    let acc = ref [] in
    iter_bits t (fun b -> acc := b :: !acc);
    List.rev !acc

  (* the no-zero-words invariant makes equality a plain entry compare *)
  let equal a b =
    a.n = b.n
    &&
    let rec go p =
      p >= a.n || (a.idx.(p) = b.idx.(p) && a.w.(p) = b.w.(p) && go (p + 1))
    in
    go 0

  (** does the sparse set meet the dense set? One AND per stored word. *)
  let inter_dense t (d : dense) =
    let nd = Array.length d.words in
    let rec go p =
      p < t.n
      && ((t.idx.(p) < nd && t.w.(p) land Array.unsafe_get d.words t.idx.(p) <> 0)
         || go (p + 1))
    in
    go 0

  (** dense dst ∪= sparse src, one OR per stored word *)
  let union_into_dense ~(dst : dense) t =
    if t.n > 0 then begin
      ensure dst (((t.idx.(t.n - 1) + 1) * bits_per_word) - 1);
      for p = 0 to t.n - 1 do
        let i = t.idx.(p) in
        Array.unsafe_set dst.words i (Array.unsafe_get dst.words i lor t.w.(p))
      done
    end
end
