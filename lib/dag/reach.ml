(** The reachability matrix M (Section 3.1) and Algorithm Reach (Fig. 4).

    M(anc, desc) holds exactly when [anc] is a proper ancestor of [desc].
    The paper stores M as a relation of its set pairs precisely because
    |M| ≪ n² on realistic hierarchies (Fig. 10(b)); we do the same, as one
    sparse ancestor set per node, so memory is O(|M|), queries anc(d) and
    "is a an ancestor of d" are O(1)/O(|anc(d)|), and Algorithm Reach's
    union is linear in the output. *)

type row = (int, unit) Hashtbl.t
(** the ids of a node's proper ancestors *)

type t = { rows : (int, row) Hashtbl.t }

let empty () = { rows = Hashtbl.create 1024 }

let row m id : row =
  match Hashtbl.find_opt m.rows id with
  | Some r -> r
  | None ->
      let r = Hashtbl.create 8 in
      Hashtbl.replace m.rows id r;
      r

let row_opt m id = Hashtbl.find_opt m.rows id

(** [is_ancestor m a d]: is [a] a proper ancestor of [d]? O(1). *)
let is_ancestor m a d =
  match row_opt m d with None -> false | Some r -> Hashtbl.mem r a

let is_ancestor_or_self m a d = a = d || is_ancestor m a d

(** Ancestors of [d], as node ids. *)
let ancestors m d =
  match row_opt m d with
  | None -> []
  | Some r -> Hashtbl.fold (fun a () acc -> a :: acc) r []

let iter_ancestors f m d =
  match row_opt m d with
  | None -> ()
  | Some r -> Hashtbl.iter (fun a () -> f a) r

let n_ancestors m d =
  match row_opt m d with None -> 0 | Some r -> Hashtbl.length r

(** Descendants of [a]: a scan over all rows, O(|M|). The evaluator avoids
    this direction by querying ancestor-side. *)
let descendants m a =
  Hashtbl.fold
    (fun id r acc -> if Hashtbl.mem r a then id :: acc else acc)
    m.rows []

(** Total number of (anc, desc) pairs — the |M| of Fig. 10(b). *)
let size m = Hashtbl.fold (fun _ r acc -> acc + Hashtbl.length r) m.rows 0

let add_pair m a d = Hashtbl.replace (row m d) a ()

let remove_pair m a d =
  match row_opt m d with None -> () | Some r -> Hashtbl.remove r a

let remove_row m id = Hashtbl.remove m.rows id

let union_into ~(dst : row) (src : row) =
  Hashtbl.iter (fun a () -> Hashtbl.replace dst a ()) src

(** Algorithm Reach (Fig. 4): M from the edge relations and the
    topological order. Processing L backwards (root side first)
    guarantees that when node d is reached every parent's ancestor set is
    final, so anc(d) = ∪_{p ∈ parent(d)} ({p} ∪ anc(p)); the run costs
    O(Σ_d in(d)·|anc|) = O(n·|V|) worst case, linear in |M| in practice. *)
let compute (store : Store.t) (l : Topo.t) : t =
  let m = empty () in
  Topo.iter_backward
    (fun d ->
      let r = row m d in
      List.iter
        (fun p ->
          Hashtbl.replace r p ();
          match row_opt m p with
          | Some rp -> union_into ~dst:r rp
          | None -> ())
        (Store.parents store d))
    l;
  m

(** Extensional equality over the same store — the oracle check
    "incremental maintenance ≡ recomputation". *)
let equal (a : t) (b : t) (store : Store.t) =
  Store.fold_nodes
    (fun n ok ->
      ok
      &&
      let ra = row_opt a n.Store.id and rb = row_opt b n.Store.id in
      let to_set = function
        | None -> []
        | Some r ->
            List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) r [])
      in
      to_set ra = to_set rb)
    store true

(** Deep copy — snapshot support for transactional update groups. *)
let copy m =
  let rows = Hashtbl.create (Hashtbl.length m.rows) in
  Hashtbl.iter (fun id r -> Hashtbl.replace rows id (Hashtbl.copy r)) m.rows;
  { rows }
