(** The reachability matrix M (Section 3.1) and Algorithm Reach (Fig. 4).

    M(anc, desc) holds exactly when [anc] is a proper ancestor of [desc].
    M is stored as one sparse bitset ({!Bitset.Sparse}) per node — the
    node's proper-ancestor set, indexed by node *slots* (the dense indexes
    the store hands out and recycles). With that layout Algorithm Reach's
    inner union is a word-wise OR (a sorted merge of the rows' nonzero
    words), [is_ancestor] a binary search + bit test, |anc(d)| and |M| are
    popcounts, and [descendants] reads an indexed reverse matrix instead
    of scanning all of M. Rows store only their nonzero words: ancestor
    sets are a sliver of the slot universe (|M| ≪ n², Fig. 10(b)), so M
    costs O(|M|) memory, not O(n²/63) — at 100K cells the latter is
    gigabytes of live heap and loses to GC pressure everything the
    word-wise ops gain.

    The reverse (descendant) index is built lazily from the ancestor rows
    on first use and invalidated by any mutation: nothing on the
    maintenance hot path reads it, so Δ(M,L)insert/delete pay only the
    forward-row updates, while repeated [descendants] queries between
    mutations are O(|row|) after one O(|M|) build.

    Rows are bound to a specific store (for the slot↔id mapping);
    snapshots must pair a copied matrix with the copied store ({!copy}).
    Slots of removed nodes are recycled by the store — the maintenance
    algorithms clear a removed node's row ({!remove_row}) and rebuild the
    rows of its former descendants, so no stale bits survive a removal
    (property-tested). *)

module Sparse = Bitset.Sparse
module Journal = Rxv_relational.Journal

type t = {
  store : Store.t;
  mutable anc : Sparse.t array;  (** slot -> proper-ancestor slot set *)
  mutable desc : Sparse.t array option;
      (** lazy reverse index: slot -> descendant slot set *)
  journal : Journal.t;
      (** undo journal; in-place row mutators copy-on-write each touched
          row once per frame, so abort restores only the touched rows *)
  mutable touched : (int, unit) Hashtbl.t list;
      (** per-frame set of slots already COW'd, innermost first — a stack
          parallel to the journal's frames *)
  mutable arr_shared : bool;
      (** the row array object is referenced by a frozen view; the next
          in-place write must copy the (pointer) array first *)
  mutable ever_frozen : bool;
      (** no freeze has happened yet ⇒ no view can alias any row, so
          in-place mutation needs no view copies at all *)
  privatized : (int, unit) Hashtbl.t;
      (** slots whose row object was created (or copied) since the last
          freeze — private to the live matrix, safe to mutate in place *)
}

let create (store : Store.t) : t =
  {
    store;
    anc = [||];
    desc = None;
    journal = Journal.create ();
    touched = [];
    arr_shared = false;
    ever_frozen = false;
    privatized = Hashtbl.create 64;
  }

let invalidate m = m.desc <- None

let journal m = m.journal

let begin_ m =
  Journal.begin_ m.journal;
  m.touched <- Hashtbl.create 16 :: m.touched

let commit m =
  Journal.commit m.journal;
  match m.touched with
  | top :: parent :: rest ->
      (* the parent frame inherits the marks: its own abort restores the
         original rows (the folded-in entries), so re-COWing is waste *)
      Hashtbl.iter (fun s () -> Hashtbl.replace parent s ()) top;
      m.touched <- parent :: rest
  | [ _ ] | [] -> m.touched <- []

let abort m =
  Journal.abort m.journal;
  (match m.touched with [] -> () | _ :: rest -> m.touched <- rest);
  invalidate m

let recording m = Journal.recording m.journal

(* Lazy copy-on-write of the row (pointer) array against frozen views:
   one shallow copy on the first write after a freeze. Cells still alias
   the view's row objects — per-row privatization below handles those. *)
let unshare_arr m =
  if m.arr_shared then begin
    m.anc <- Array.copy m.anc;
    m.arr_shared <- false
  end

(* Grow the row array to cover [slot]; every cell owns its bitset. The
   object swap is journaled so undo closures recorded earlier (which
   write through [m.anc] at replay time) find the object they captured
   against restored first, by LIFO. The fresh array is private by
   construction; the undo restores the old sharing flag with it. *)
let ensure_slot m slot =
  let n = Array.length m.anc in
  if slot >= n then begin
    let n' = max (max 16 (2 * n)) (slot + 1) in
    let old = m.anc in
    let anc =
      Array.init n' (fun i -> if i < n then m.anc.(i) else Sparse.create ())
    in
    if recording m then begin
      let old_shared = m.arr_shared in
      Journal.record m.journal (fun () ->
          m.anc <- old;
          m.arr_shared <- old_shared)
    end;
    m.anc <- anc;
    m.arr_shared <- false
  end

(* Copy-on-write for in-place row mutation, against two kinds of alias:
   the first touch of a row in the innermost frame records "put the
   original bitset object back" and swaps in a private copy (abort is
   then O(touched rows), not O(M)); and the first touch since a freeze
   swaps in a private copy so the frozen view keeps the original. A
   journal rollback reinstates the pre-frame object, so it also clears
   the privatized mark it had installed. *)
let cow m sd =
  unshare_arr m;
  let saved = m.anc.(sd) in
  let journal_fresh =
    match m.touched with
    | top :: _ when recording m && not (Hashtbl.mem top sd) ->
        let was_priv = Hashtbl.mem m.privatized sd in
        Journal.record m.journal (fun () ->
            m.anc.(sd) <- saved;
            if not was_priv then Hashtbl.remove m.privatized sd);
        Hashtbl.replace top sd ();
        true
    | _ -> false
  in
  let view_fresh = m.ever_frozen && not (Hashtbl.mem m.privatized sd) in
  if journal_fresh || view_fresh then begin
    m.anc.(sd) <- Sparse.copy saved;
    Hashtbl.replace m.privatized sd ()
  end

(* Replace-style mutation: the old row object survives untouched (frozen
   views keep it), so recording its restoration needs no copy at all.
   Marks the row touched and privatized — the replacement object is
   fresh, in-place mutators may hit it directly. *)
let save_row m sd =
  unshare_arr m;
  (match m.touched with
  | top :: _ when recording m && not (Hashtbl.mem top sd) ->
      let saved = m.anc.(sd) in
      let was_priv = Hashtbl.mem m.privatized sd in
      Journal.record m.journal (fun () ->
          m.anc.(sd) <- saved;
          if not was_priv then Hashtbl.remove m.privatized sd);
      Hashtbl.replace top sd ()
  | _ -> ());
  Hashtbl.replace m.privatized sd ()

let slot_of m id = (Store.node m.store id).Store.slot

let row m slot =
  ensure_slot m slot;
  Array.unsafe_get m.anc slot

(** [is_ancestor m a d]: is [a] a proper ancestor of [d]? A bit test. *)
let is_ancestor m a d =
  Store.mem_node m.store a
  && Store.mem_node m.store d
  &&
  let sd = slot_of m d in
  sd < Array.length m.anc && Sparse.get m.anc.(sd) (slot_of m a)

let is_ancestor_or_self m a d = a = d || is_ancestor m a d

let iter_ancestors f m d =
  if Store.mem_node m.store d then
    let sd = slot_of m d in
    if sd < Array.length m.anc then
      Sparse.iter_bits m.anc.(sd) (fun s ->
          match Store.id_of_slot m.store s with
          | Some a -> f a
          | None -> ())

(** Ancestors of [d], as node ids. *)
let ancestors m d =
  let acc = ref [] in
  iter_ancestors (fun a -> acc := a :: !acc) m d;
  !acc

let n_ancestors m d =
  if Store.mem_node m.store d then
    let sd = slot_of m d in
    if sd < Array.length m.anc then Sparse.pop_count m.anc.(sd) else 0
  else 0

(** Total number of (anc, desc) pairs — the |M| of Fig. 10(b). *)
let size m = Array.fold_left (fun acc r -> acc + Sparse.pop_count r) 0 m.anc

let add_pair m a d =
  let sd = slot_of m d in
  ensure_slot m sd;
  cow m sd;
  Sparse.set m.anc.(sd) (slot_of m a);
  invalidate m

let remove_pair m a d =
  if Store.mem_node m.store a && Store.mem_node m.store d then begin
    let sd = slot_of m d in
    if sd < Array.length m.anc then begin
      cow m sd;
      Sparse.clear m.anc.(sd) (slot_of m a)
    end;
    invalidate m
  end

(** Forget [id]'s row entirely (node removal; its slot may be recycled).
    Pairs with [id] on the ancestor side live in other rows and are the
    caller's responsibility, exactly as with the relational representation
    — Δ(M,L)delete rebuilds every affected descendant row first. *)
let remove_row m id =
  if Store.mem_node m.store id then begin
    let s = slot_of m id in
    if s < Array.length m.anc then begin
      save_row m s;
      m.anc.(s) <- Sparse.create ()
    end;
    invalidate m
  end

(** {2 Maintenance row operations} — the ΔM inner loops of Figs. 7–8,
    word-wise. *)

(* ∪_{p ∈ parents} ({slot p} ∪ anc(p)), as a fresh slot set. A parent
   equal to [d] contributes its bit but not a self-union (mirroring the
   guard of Δ(M,L)insert). *)
let bits_of_parents m d parents =
  let bits = Sparse.create () in
  List.iter
    (fun p ->
      let sp = slot_of m p in
      Sparse.set bits sp;
      if p <> d then Sparse.union_into ~dst:bits (row m sp))
    parents;
  bits

(** [absorb_parents m d ~parents]: anc(d) ∪= ∪_p ({p} ∪ anc(p)) — the
    row-growing step of Δ(M,L)insert (Fig. 7, lines 3–5). Returns the
    number of M pairs added. *)
let absorb_parents m d ~parents =
  let sd = slot_of m d in
  ensure_slot m sd;
  cow m sd;
  let rd = m.anc.(sd) in
  let before = Sparse.pop_count rd in
  Sparse.union_into ~dst:rd (bits_of_parents m d parents);
  invalidate m;
  Sparse.pop_count rd - before

(** [replace_row_from_parents m d ~parents]: anc(d) := ∪_p ({p} ∪ anc(p))
    — the row-rebuilding step of Δ(M,L)delete (Fig. 8). Returns the net
    number of M pairs removed (old |anc(d)| − new). *)
let replace_row_from_parents m d ~parents =
  let sd = slot_of m d in
  ensure_slot m sd;
  let old = Sparse.pop_count m.anc.(sd) in
  let bits = bits_of_parents m d parents in
  save_row m sd;
  m.anc.(sd) <- bits;
  invalidate m;
  old - Sparse.pop_count bits

(** {2 Read access for the DAG evaluator} — slot-set queries against the
    forward rows; [slot_of] lets callers build (dense) query sets
    themselves. *)

(** [anc_intersects m id bits]: does anc(id) meet the slot set [bits]? *)
let anc_intersects m id (bits : Bitset.t) =
  let s = slot_of m id in
  s < Array.length m.anc && Sparse.inter_dense m.anc.(s) bits

(** [union_row_into m id ~dst]: dst ∪= anc(id), word-wise. *)
let union_row_into m id ~(dst : Bitset.t) =
  let s = slot_of m id in
  if s < Array.length m.anc then Sparse.union_into_dense ~dst m.anc.(s)

(** {2 Descendants via the reverse index} *)

let desc_index m =
  match m.desc with
  | Some d -> d
  | None ->
      let n = Array.length m.anc in
      let d = Array.init n (fun _ -> Sparse.create ()) in
      (* sd ascends, so each reverse row is appended in order — no
         insertion shifting even for high-fanout ancestors *)
      for sd = 0 to n - 1 do
        Sparse.iter_bits m.anc.(sd) (fun sa -> Sparse.set d.(sa) sd)
      done;
      m.desc <- Some d;
      d

let iter_descendants f m a =
  if Store.mem_node m.store a then begin
    let d = desc_index m in
    let sa = slot_of m a in
    if sa < Array.length d then
      Sparse.iter_bits d.(sa) (fun s ->
          match Store.id_of_slot m.store s with
          | Some id -> f id
          | None -> ())
  end

(** Descendants of [a], as node ids: an indexed reverse lookup. The index
    is rebuilt (O(|M|)) on the first query after a mutation, then each
    query is O(|desc(a)|). *)
let descendants m a =
  let acc = ref [] in
  iter_descendants (fun id -> acc := id :: !acc) m a;
  !acc

(** Algorithm Reach (Fig. 4): M from the edge relations and the
    topological order. Processing L backwards (root side first)
    guarantees that when node d is reached every parent's ancestor set is
    final, so anc(d) = ∪_{p ∈ parent(d)} ({p} ∪ anc(p)); each union is a
    word-wise OR (sorted merge) over the parent's row. *)
let compute (store : Store.t) (l : Topo.t) : t =
  let m = create store in
  ensure_slot m (max 0 (Store.slot_capacity store - 1));
  Topo.iter_backward
    (fun d ->
      let parents = Store.parents store d in
      if parents <> [] then
        let rd = row m (slot_of m d) in
        List.iter
          (fun p ->
            let sp = slot_of m p in
            Sparse.set rd sp;
            if p <> d then Sparse.union_into ~dst:rd (row m sp))
          parents)
    l;
  m

(** Extensional equality over the same store — the oracle check
    "incremental maintenance ≡ recomputation". Both matrices must be
    bound to stores with identical slot assignments (in practice: the
    same store). *)
let equal (a : t) (b : t) (store : Store.t) =
  let empty = Sparse.create () in
  let row_of m s = if s < Array.length m.anc then m.anc.(s) else empty in
  Store.fold_nodes
    (fun n ok ->
      ok
      &&
      let s = n.Store.slot in
      Sparse.equal (row_of a s) (row_of b s))
    store true

(** Deep copy — snapshot support for transactional update groups. The
    copy is bound to [store], which must be the (copied) store the
    snapshot will restore: slot assignments are preserved by
    {!Store.copy}, so rows transfer as plain word-array copies. *)
let copy ~(store : Store.t) (m : t) : t =
  {
    store;
    anc = Array.map Sparse.copy m.anc;
    desc = None;
    journal = Journal.create ();
    touched = [];
    arr_shared = false;
    ever_frozen = false;
    privatized = Hashtbl.create 64;
  }

(** {2 Frozen views (MVCC snapshot reads)}

    Freezing is O(1): it captures the row-array object and flags both
    the array and (by resetting the privatized set) every row as shared.
    The live matrix then pays one shallow pointer-array copy on its
    first in-place write after the freeze, plus one row copy per row it
    actually touches — O(touched rows) per writer batch, never a deep
    copy of M. Views address rows by slot; pair them with the
    {!Store.view} frozen in the same quiescent instant for the slot↔id
    mapping. Capture with no transaction frame open. *)

type view = { rv_anc : Sparse.t array }

let freeze m =
  m.arr_shared <- true;
  m.ever_frozen <- true;
  Hashtbl.reset m.privatized;
  { rv_anc = m.anc }

(** [view_anc_intersects v s bits]: does anc(slot s) meet the dense slot
    set [bits]? *)
let view_anc_intersects v s (bits : Bitset.t) =
  s < Array.length v.rv_anc && Sparse.inter_dense v.rv_anc.(s) bits

(** [view_union_row_into v s ~dst]: dst ∪= anc(slot s), word-wise. *)
let view_union_row_into v s ~(dst : Bitset.t) =
  if s < Array.length v.rv_anc then Sparse.union_into_dense ~dst v.rv_anc.(s)

(** Total number of (anc, desc) pairs in the view — |M| at capture. *)
let view_size v =
  Array.fold_left (fun acc r -> acc + Sparse.pop_count r) 0 v.rv_anc
