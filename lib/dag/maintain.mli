(** Incremental maintenance of the auxiliary structures (Section 3.4):
    Δ(M,L)insert (Fig. 7), Δ(M,L)delete (Fig. 8), and the background
    garbage collection of Section 2.3. Both entry points run *after* the
    store's edges were updated by Xinsert/Xdelete, matching Fig. 3.

    Deliberate generalization over Fig. 7: the paper repositions only rA
    relative to the targets (lines 12–13); when the inserted subtree
    shares interior nodes with the view those can also sit after a target
    in L, so the same swap-based fix is applied to every common subtree
    node (required for validity under arbitrary sharing; property-tested
    against recomputation). *)

type insert_stats = {
  m_pairs_added : int;
  common_nodes : int;  (** |NC|: subtree nodes already present *)
  merged_nodes : int;  (** new nodes spliced into L *)
  touched : int list;
      (** nodes whose Δ(M,L) rows this update visited (subtree ∪ targets)
          — the seed set for dirtying cached DP rows: every other node's
          bottom-up value depends only on descendants outside this set *)
}

type delete_stats = {
  m_pairs_removed : int;
  cascade_edges : (int * int) list;
      (** Δ'V: edges of fully-deleted nodes, removed by the collector *)
  deleted_nodes : int list;
  touched : int list;
      (** desc-or-self of the targets (including the nodes then deleted)
          — the seed set for dirtying cached DP rows *)
  deleted_slots : int list;
      (** store slots freed by [deleted_nodes], captured before removal:
          the store recycles slots, so cached per-slot rows must be
          dirtied even though the ids are gone *)
}

val on_insert :
  Store.t ->
  Topo.t ->
  Reach.t ->
  targets:int list ->
  root_id:int ->
  new_nodes:int list ->
  insert_stats
(** Algorithm Δ(M,L)insert. [targets] is r[[p]]; [root_id] is rA. The
    store must already contain the subtree and the connection edges. *)

val on_delete :
  Store.t -> Topo.t -> Reach.t -> targets:int list -> delete_stats
(** Algorithm Δ(M,L)delete. The Ep(r) edges must already be removed from
    the store; recomputes ancestor rows of desc-or-self(targets)
    (ancestors first), cascades orphan removal (Δ'V) and cleans L, M and
    the gen registries. *)

val recompute : Store.t -> Topo.t * Reach.t
(** the from-scratch baseline Table 1 compares against *)

val collect_garbage : Store.t -> Topo.t -> Reach.t -> int list
(** full-scan collector removing every node unreachable from the root;
    the incremental path should leave nothing for it to find (tested) *)

val desc_or_self_set : Store.t -> int list -> (int, unit) Hashtbl.t
val subtree_order : Store.t -> int -> int list
(** descendants-first order of the subtree below a node *)
