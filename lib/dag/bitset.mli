(** Growable dense bitsets over small integer indexes. Used for the
    per-(filter, suffix) satisfaction tables of the bottom-up XPath pass,
    which are dense by construction (one bit per node slot). *)

type t

val create : unit -> t
val capacity : t -> int

val set : t -> int -> unit
val clear : t -> int -> unit
val get : t -> int -> bool

val union_into : dst:t -> t -> unit
(** dst := dst ∪ src *)

val copy : t -> t
val is_empty : t -> bool
val count : t -> int

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list

val intersects : t -> t -> bool
val equal : t -> t -> bool
