(** Growable dense bitsets over small integer indexes, stored as native-int
    words (63 usable bits each). Backs both the per-node ancestor rows of
    the reachability matrix M — where Algorithm Reach's inner union is a
    word-wise OR — and the per-(filter, suffix) satisfaction tables of the
    bottom-up XPath pass. All bulk operations are word-at-a-time. *)

type t

val create : unit -> t
val capacity : t -> int

val set : t -> int -> unit
val clear : t -> int -> unit
val get : t -> int -> bool

val union_into : dst:t -> t -> unit
(** dst := dst ∪ src, one OR per word *)

val diff_into : dst:t -> t -> unit
(** dst := dst \ src, one AND-NOT per word *)

val copy : t -> t
val is_empty : t -> bool

val pop_count : t -> int
(** number of set bits, via a 16-bit-table popcount per word *)

val count : t -> int
(** alias of {!pop_count} *)

val iter_bits : t -> (int -> unit) -> unit
(** apply to every set bit index, ascending; words are consumed by
    lowest-set-bit isolation, so cost is O(words + set bits) *)

val iter : (int -> unit) -> t -> unit
(** [iter f t] = [iter_bits t f] *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list

val intersects : t -> t -> bool
(** a ∩ b ≠ ∅, word-wise *)

val equal : t -> t -> bool
(** extensional: capacities may differ *)

type dense = t

(** Sparse bitsets: only the nonzero words, as parallel sorted arrays of
    (word index, word). Same word-at-a-time operations, but memory is
    O(stored words) instead of O(universe/63) — the representation behind
    the rows of the reachability matrix M, whose ancestor sets are a tiny
    fraction of the slot universe (|M| ≪ n², Fig. 10(b)). Dense sets stay
    the right choice for the random-access satisfaction tables of the
    XPath bottom-up pass; the [*_dense] operations bridge the two. *)
module Sparse : sig
  type t

  val create : unit -> t
  val set : t -> int -> unit
  val clear : t -> int -> unit
  val get : t -> int -> bool
  (** binary search over the stored word indexes + a bit test *)

  val union_into : dst:t -> t -> unit
  (** dst := dst ∪ src — a sorted merge, one OR per colliding word *)

  val copy : t -> t
  val is_empty : t -> bool

  val pop_count : t -> int
  (** popcount over the stored words only *)

  val iter_bits : t -> (int -> unit) -> unit
  (** every set bit, ascending *)

  val to_list : t -> int list

  val equal : t -> t -> bool
  (** entry-wise; canonical thanks to the no-zero-words invariant *)

  val inter_dense : t -> dense -> bool
  (** does the sparse set meet the dense set? One AND per stored word *)

  val union_into_dense : dst:dense -> t -> unit
  (** dense dst ∪= sparse src, one OR per stored word *)
end
