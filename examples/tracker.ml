(* The docs/TUTORIAL.md walkthrough, runnable: a recursive task tracker
   published as an updatable XML view.

   Run with: dune exec examples/tracker.exe *)

module V = Rxv_relational.Value
module Schema = Rxv_relational.Schema
module Database = Rxv_relational.Database
module Sql = Rxv_relational.Sql
module Group_update = Rxv_relational.Group_update
module Dtd_parser = Rxv_xml.Dtd_parser
module Tree = Rxv_xml.Tree
module Atg = Rxv_atg.Atg
module Engine = Rxv_core.Engine
module X = Rxv_core.Xupdate
module Parser = Rxv_xpath.Parser

(* 1. relational schema *)
let schema =
  Schema.db
    [
      Schema.relation "task"
        [
          Schema.attr "tid" V.TStr;
          Schema.attr "title" V.TStr;
          Schema.attr "toplevel" V.TBool;
        ]
        ~key:[ "tid" ];
      Schema.relation "subtask"
        [ Schema.attr "parent" V.TStr; Schema.attr "child" V.TStr ]
        ~key:[ "parent"; "child" ];
    ]

(* 2. DTD from text, normalized automatically *)
let dtd =
  Dtd_parser.parse
    {| <!ELEMENT tracker (task*)>
       <!ELEMENT task (tid, title, subs)>
       <!ELEMENT tid (#PCDATA)>
       <!ELEMENT title (#PCDATA)>
       <!ELEMENT subs (task*)> |}

(* 3. the ATG, rules as SQL *)
let atg =
  Atg.make ~name:"tracker" ~schema ~dtd
    [
      ( "tracker",
        Atg.star
          (Sql.parse ~name:"Qroot"
             "select t.tid, t.title from task t where t.toplevel = true") );
      ( "task",
        Atg.R_seq
          [
            ("tid", [| Atg.From_parent 0 |]);
            ("title", [| Atg.From_parent 1 |]);
            ("subs", [| Atg.From_parent 0 |]);
          ] );
      ("tid", Atg.R_pcdata 0);
      ("title", Atg.R_pcdata 0);
      ( "subs",
        Atg.star
          (Sql.parse ~name:"Qsubs"
             "select t.tid, t.title from subtask s, task t \
              where s.parent = $0 and s.child = t.tid") );
    ]

let seed_db () =
  let db = Database.create schema in
  let task tid title top =
    Database.insert db "task" [| V.Str tid; V.Str title; V.Bool top |]
  in
  let sub p c = Database.insert db "subtask" [| V.Str p; V.Str c |] in
  task "T1" "Ship the release" true;
  task "T2" "Write changelog" false;
  task "T3" "Run QA pass" false;
  task "T7" "Cut the build" false;
  task "T9" "Sign binaries" false;
  sub "T1" "T2";
  sub "T1" "T3";
  sub "T1" "T7";
  sub "T3" "T7";
  (* the build task is shared: QA and release both need it *)
  sub "T7" "T9";
  db

let show_outcome engine what = function
  | Ok (r : Engine.report) ->
      Fmt.pr "%s@.  applied; ΔR = %a@." what Group_update.pp r.Engine.delta_r;
      (match Engine.check_consistency engine with
      | Ok () -> ()
      | Error m -> Fmt.pr "  !! %s@." m)
  | Error rej -> Fmt.pr "%s@.  %a@." what Engine.pp_rejection rej

let () =
  (* 4. publish *)
  let db = seed_db () in
  let engine = Engine.create atg db in
  Fmt.pr "Tracker view (T7 'Cut the build' is shared):@.%a@.@." Tree.pp
    (Engine.to_tree engine);

  (* 5. query *)
  let r = Engine.query engine (Parser.parse "//task[tid=T7]/subs/task") in
  Fmt.pr "sub-tasks of T7: %d; Ep(r) edges: %d@.@."
    (List.length r.Rxv_core.Dag_eval.selected)
    (List.length r.Rxv_core.Dag_eval.arrival_edges);

  (* 6. update through the view *)
  show_outcome engine "detach T9 from T7:"
    (Engine.apply engine
       (X.Delete (Parser.parse "//task[tid=T7]/subs/task[tid=T9]")));
  show_outcome engine "add a new task under T3:"
    (Engine.apply engine
       (X.Insert
          {
            etype = "task";
            attr = [| V.Str "T99"; V.Str "Write docs" |];
            path = Parser.parse "//task[tid=T3]/subs";
          }));
  (* the synthesized task row must NOT be toplevel, or a new tracker
     child would appear — the SAT encoding picks toplevel = false *)
  (match Database.find_by_key db "task" [ V.Str "T99" ] with
  | Some t -> Fmt.pr "  synthesized task row: %a@." Rxv_relational.Tuple.pp t
  | None -> Fmt.pr "  !! T99 not inserted@.");

  (* what-if without committing *)
  (match
     Engine.dry_run engine
       (X.Delete (Parser.parse "//task[tid=T1]/subs/task[tid=T3]"))
   with
  | Ok r ->
      Fmt.pr "@.dry run — detaching T3 from T1 would execute: %a@."
        Group_update.pp r.Engine.delta_r
  | Error rej -> Fmt.pr "dry run rejected: %a@." Engine.pp_rejection rej);

  (* 7. updates from below *)
  (match
     Rxv_core.Base_update.apply engine
       [ Group_update.Insert ("subtask", [| V.Str "T2"; V.Str "T7" |]) ]
   with
  | Ok rep ->
      Fmt.pr "@.base insert subtask(T2, T7): %d edge(s) added incrementally@."
        rep.Rxv_core.Base_update.edges_added
  | Error m -> Fmt.pr "base update failed: %s@." m);

  (match Engine.check_consistency engine with
  | Ok () -> Fmt.pr "@.final consistency check: OK@."
  | Error m -> Fmt.pr "@.final consistency check FAILED: %s@." m);
  Fmt.pr "@.Final view:@.%a@." Tree.pp (Engine.to_tree engine)
