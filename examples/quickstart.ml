(* Quickstart: publish a recursive XML view of a relational database and
   update the database *through* the view.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Rxv_core.Engine
module Xupdate = Rxv_core.Xupdate
module Parser = Rxv_xpath.Parser
module Tree = Rxv_xml.Tree
module Registrar = Rxv_workload.Registrar

let () =
  (* 1. A relational database (the paper's registrar example) and an ATG
     view definition σ : R → D with a recursive DTD. *)
  let engine = Registrar.engine () in
  Fmt.pr "The published XML view (CS courses with prerequisites):@.%a@.@."
    Tree.pp (Engine.to_tree engine);

  (* 2. Query the view with recursive XPath. *)
  let q = Parser.parse "//course[cno=CS320]/takenBy/student" in
  let result = Engine.query engine q in
  Fmt.pr "Students of CS320 (wherever it occurs): %d node(s)@.@."
    (List.length result.Rxv_core.Dag_eval.selected);

  (* 3. Delete through the view: drop CS120 from CS320's prerequisites.
     The engine translates the XML update to relational deletions. *)
  let del = Xupdate.Delete (Parser.parse "//course[cno=CS320]/prereq/course[cno=CS120]") in
  (match Engine.apply engine del with
  | Ok report ->
      Fmt.pr "delete %a@.  ΔR = %a@.@." Xupdate.pp del
        Rxv_relational.Group_update.pp report.Engine.delta_r
  | Error r -> Fmt.pr "rejected: %a@." Engine.pp_rejection r);

  (* 4. Insert through the view: a brand-new course becomes a prerequisite
     of CS240; the SAT-based translation synthesizes the base tuples. *)
  let ins =
    Xupdate.Insert
      {
        etype = "course";
        attr = Registrar.course_attr "CS101" "Intro to CS";
        path = Parser.parse "course[cno=CS240]/prereq";
      }
  in
  (match Engine.apply engine ins with
  | Ok report ->
      Fmt.pr "insert CS101 into course[cno=CS240]/prereq@.  ΔR = %a@."
        Rxv_relational.Group_update.pp report.Engine.delta_r;
      Fmt.pr
        "  (note the synthesized dept value: dept = \"CS\" would have made@.\
        \   CS101 appear as a NEW top-level course — a side effect the@.\
        \   update did not ask for — so the translation avoids it)@.@."
  | Error r -> Fmt.pr "rejected: %a@." Engine.pp_rejection r);

  (* 5. The view, the auxiliary structures and the database stay
     consistent: republishing from the updated database gives the same
     view the engine maintained incrementally. *)
  (match Engine.check_consistency engine with
  | Ok () -> Fmt.pr "consistency check: OK@.@."
  | Error m -> Fmt.pr "consistency check FAILED: %s@." m);
  Fmt.pr "Final view:@.%a@." Tree.pp (Engine.to_tree engine)
