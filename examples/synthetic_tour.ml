(* The synthetic dataset of Section 5 at small scale: generation,
   publication statistics (the quantities of Fig. 10(b)), and one update
   of each workload class with its per-phase timings.

   Run with: dune exec examples/synthetic_tour.exe *)

module Engine = Rxv_core.Engine
module Xupdate = Rxv_core.Xupdate
module Synth = Rxv_workload.Synth
module Updates = Rxv_workload.Updates

let () =
  let n = 5_000 in
  let d = Synth.generate (Synth.default_params ~seed:2026 n) in
  let t0 = Unix.gettimeofday () in
  let e = Engine.create (Synth.atg ()) d.Synth.db in
  let publish_s = Unix.gettimeofday () -. t0 in
  let st = Engine.stats e in
  Fmt.pr "Synthetic dataset, |C| = %d (Section 5):@." n;
  Fmt.pr "  published in %.2fs@." publish_s;
  Fmt.pr "  tree occurrences   %d@." st.Engine.occurrences;
  Fmt.pr "  DAG nodes          %d@." st.Engine.n_nodes;
  Fmt.pr "  edge tuples |V|    %d@." st.Engine.n_edges;
  Fmt.pr "  |M| (reachability) %d@." st.Engine.m_size;
  Fmt.pr "  |L| (topo order)   %d@." st.Engine.l_size;
  Fmt.pr "  shared instances   %.1f%% (paper: 31.4%%)@."
    (100. *. st.Engine.sharing);

  let show cls u =
    match Engine.apply ~policy:`Proceed e u with
    | Ok r ->
        Fmt.pr "@.%s: %a@." (Updates.cls_name cls) Xupdate.pp u;
        Fmt.pr "  xpath %.2fms | translate+execute %.2fms | maintain %.2fms@."
          (1000. *. r.Engine.timings.Engine.t_eval)
          (1000. *. r.Engine.timings.Engine.t_translate)
          (1000. *. r.Engine.timings.Engine.t_maintain);
        Fmt.pr "  ΔR = %a@." Rxv_relational.Group_update.pp r.Engine.delta_r
    | Error rej ->
        Fmt.pr "@.%s: %a@.  rejected: %a@." (Updates.cls_name cls) Xupdate.pp u
          Engine.pp_rejection rej
  in
  List.iteri
    (fun i cls ->
      (match Updates.deletions e.Engine.store cls ~count:1 ~seed:(5 + i) with
      | [ u ] -> show cls u
      | _ -> ());
      match
        Updates.insertions d e.Engine.store cls ~count:1 ~seed:(50 + i) ()
      with
      | [ u ] -> show cls u
      | _ -> ())
    [ Updates.W1; Updates.W2; Updates.W3 ];

  match Engine.check_consistency e with
  | Ok () -> Fmt.pr "@.consistency check: OK@."
  | Error m -> Fmt.pr "@.consistency check FAILED: %s@." m
