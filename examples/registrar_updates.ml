(* A tour of the paper's running examples (Examples 1-7): side-effect
   detection, the revised update semantics, and what each update does to
   the underlying relations.

   Run with: dune exec examples/registrar_updates.exe *)

module Engine = Rxv_core.Engine
module Xupdate = Rxv_core.Xupdate
module Dag_eval = Rxv_core.Dag_eval
module Parser = Rxv_xpath.Parser
module Tree = Rxv_xml.Tree
module Group_update = Rxv_relational.Group_update
module Registrar = Rxv_workload.Registrar

let section title = Fmt.pr "@.=== %s ===@." title

let show_outcome engine u = function
  | Ok (report : Engine.report) ->
      Fmt.pr "%a@.  -> applied; ΔR = %a%s@." Xupdate.pp u Group_update.pp
        report.Engine.delta_r
        (if report.Engine.side_effects <> [] then
           Fmt.str " (with side effects at %d unselected occurrence parents)"
             (List.length report.Engine.side_effects)
         else "");
      (match Engine.check_consistency engine with
      | Ok () -> ()
      | Error m -> Fmt.pr "  !! inconsistent: %s@." m)
  | Error r -> Fmt.pr "%a@.  -> %a@." Xupdate.pp u Engine.pp_rejection r

let () =
  let engine = Registrar.engine () in
  section "The view of Fig. 1";
  Fmt.pr "%a@." Tree.pp (Engine.to_tree engine);
  Fmt.pr "@.CS320 is shared: it occurs at top level and below CS650.@.";

  section "Example 1: insert CS240 into course[cno=CS650]//course[cno=CS320]/prereq";
  let u1 =
    Xupdate.Insert
      {
        etype = "course";
        attr = Registrar.course_attr "CS240" "Data Structures";
        path = Parser.parse "course[cno=CS650]//course[cno=CS320]/prereq";
      }
  in
  Fmt.pr "Under the `Abort policy the engine detects that CS320 also occurs@.";
  Fmt.pr "outside the selected paths and refuses:@.";
  show_outcome engine u1 (Engine.apply ~policy:`Abort engine u1);
  Fmt.pr "@.Under `Proceed the revised semantics of Section 2.1 applies the@.";
  Fmt.pr "insertion at EVERY CS320 occurrence (they are one DAG node):@.";
  show_outcome engine u1 (Engine.apply ~policy:`Proceed engine u1);

  section "Section 2.1: delete course[cno=CS650]/prereq/course[cno=CS320]";
  let u2 =
    Xupdate.Delete (Parser.parse "course[cno=CS650]/prereq/course[cno=CS320]")
  in
  Fmt.pr "A correct deletion removes the prereq EDGE — course CS320 itself@.";
  Fmt.pr "survives (it is an independent course):@.";
  show_outcome engine u2 (Engine.apply ~policy:`Proceed engine u2);

  section "Examples 4-7: delete //course[cno=CS320]//student[ssn=S02]";
  let u3 = Xupdate.Delete (Parser.parse "//course[cno=CS320]//student[ssn=S02]") in
  let ev = Engine.query engine (Xupdate.path_of u3) in
  Fmt.pr "Ep(r) has %d arrival edge(s); S02 is also enrolled in CS650, whose@."
    (List.length ev.Dag_eval.arrival_edges);
  Fmt.pr "takenBy edge must survive:@.";
  show_outcome engine u3 (Engine.apply ~policy:`Proceed engine u3);
  Fmt.pr "  S02 still enrolled in CS650: %b@."
    (Rxv_relational.Database.mem_key engine.Engine.db "enroll"
       [ Rxv_relational.Value.Str "S02"; Rxv_relational.Value.Str "CS650" ]);

  section "Section 2.4: statically invalid updates are rejected early";
  let u4 =
    Xupdate.Insert
      {
        etype = "student";
        attr = [| Rxv_relational.Value.Str "S99"; Rxv_relational.Value.Str "Zoe" |];
        path = Parser.parse "//course/prereq";
      }
  in
  show_outcome engine u4 (Engine.apply engine u4);
  let u5 = Xupdate.Delete (Parser.parse "//course/cno") in
  show_outcome engine u5 (Engine.apply engine u5);

  section "Untranslatable: a cyclic prerequisite would make the view infinite";
  (* CS320 still requires CS120 at this point, so making CS320 a
     prerequisite of CS120 closes a cycle *)
  let u6 =
    Xupdate.Insert
      {
        etype = "course";
        attr = Registrar.course_attr "CS320" "Database Systems";
        path = Parser.parse "//course[cno=CS120]/prereq";
      }
  in
  show_outcome engine u6 (Engine.apply ~policy:`Proceed engine u6);

  section "Final state";
  Fmt.pr "%a@." Tree.pp (Engine.to_tree engine);
  let st = Engine.stats engine in
  Fmt.pr "@.%d DAG nodes for %d tree occurrences; |M| = %d, |L| = %d@."
    st.Engine.n_nodes st.Engine.occurrences st.Engine.m_size st.Engine.l_size
