(* A bill-of-materials scenario built from scratch on the public API: a
   parts catalogue published as a recursive XML view, heavily shared
   (standard sub-assemblies appear in many products), updated through the
   view.

   This is the motivating shape for DAG compression: a widely reused
   sub-assembly is stored once no matter how many products contain it, and
   an update to its composition is — by the subtree property — a single
   update visible everywhere.

   Run with: dune exec examples/bom.exe *)

module Value = Rxv_relational.Value
module Schema = Rxv_relational.Schema
module Spj = Rxv_relational.Spj
module Database = Rxv_relational.Database
module Dtd = Rxv_xml.Dtd
module Tree = Rxv_xml.Tree
module Atg = Rxv_atg.Atg
module Engine = Rxv_core.Engine
module Xupdate = Rxv_core.Xupdate
module Parser = Rxv_xpath.Parser

(* --- relational schema: parts and a containment relation --- *)

let schema =
  Schema.db
    [
      Schema.relation "part"
        [
          Schema.attr "pid" Value.TStr;
          Schema.attr "pname" Value.TStr;
          Schema.attr "top" Value.TBool;  (* catalogue root entries *)
        ]
        ~key:[ "pid" ];
      Schema.relation "contains"
        [ Schema.attr "parent" Value.TStr; Schema.attr "child" Value.TStr ]
        ~key:[ "parent"; "child" ];
    ]

(* --- recursive DTD: a part contains parts --- *)

let dtd =
  Dtd.make ~root:"catalogue"
    [
      ("catalogue", Dtd.Star "part");
      ("part", Dtd.Seq [ "pid"; "pname"; "components" ]);
      ("pid", Dtd.Pcdata);
      ("pname", Dtd.Pcdata);
      ("components", Dtd.Star "part");
    ]

let atg () =
  let q_top =
    Spj.make ~name:"Qcatalogue_part"
      ~from:[ ("p", "part") ]
      ~where:[ Spj.eq (Spj.col "p" "top") (Spj.const (Value.bool true)) ]
      ~select:[ ("pid", Spj.col "p" "pid"); ("pname", Spj.col "p" "pname") ]
  in
  let q_components =
    Spj.make ~name:"Qcomponents_part"
      ~from:[ ("c", "contains"); ("p", "part") ]
      ~where:
        [
          Spj.eq (Spj.col "c" "parent") (Spj.param 0);
          Spj.eq (Spj.col "c" "child") (Spj.col "p" "pid");
        ]
      ~select:[ ("pid", Spj.col "p" "pid"); ("pname", Spj.col "p" "pname") ]
  in
  Atg.make ~name:"bom" ~schema ~dtd
    [
      ("catalogue", Atg.star q_top);
      ( "part",
        Atg.R_seq
          [
            ("pid", [| Atg.From_parent 0 |]);
            ("pname", [| Atg.From_parent 1 |]);
            ("components", [| Atg.From_parent 0 |]);
          ] );
      ("pid", Atg.R_pcdata 0);
      ("pname", Atg.R_pcdata 0);
      ("components", Atg.star q_components);
    ]

let sample_db () =
  let db = Database.create schema in
  let part pid name top =
    Database.insert db "part" [| Value.Str pid; Value.Str name; Value.Bool top |]
  in
  let contains a b =
    Database.insert db "contains" [| Value.Str a; Value.Str b |]
  in
  part "bike" "City Bike" true;
  part "ebike" "Electric Bike" true;
  part "wheel" "28in Wheel" false;
  part "hub" "Alloy Hub" false;
  part "spoke" "Steel Spoke" false;
  part "frame" "Aluminium Frame" false;
  part "motor" "Hub Motor" false;
  contains "bike" "wheel";
  contains "bike" "frame";
  contains "ebike" "wheel";
  contains "ebike" "frame";
  contains "ebike" "motor";
  contains "wheel" "hub";
  contains "wheel" "spoke";
  contains "motor" "hub";
  db

let part_attr pid name = [| Value.Str pid; Value.Str name |]

let () =
  let engine = Engine.create (atg ()) (sample_db ()) in
  Fmt.pr "Catalogue view (the wheel sub-assembly is shared by both bikes):@.%a@."
    Tree.pp (Engine.to_tree engine);
  let st = Engine.stats engine in
  Fmt.pr "@.%d tree occurrences compressed into %d DAG nodes (%.0f%% of parts shared)@."
    st.Engine.occurrences st.Engine.n_nodes (100. *. st.Engine.sharing);

  (* Add a valve to every wheel — selected under the city bike, but since
     the wheel is one shared node, the paper's revised semantics makes the
     change visible in the e-bike too; the engine reports that. *)
  Fmt.pr "@.Adding a valve to the wheel (selected via the city bike only):@.";
  let add_valve =
    Xupdate.Insert
      {
        etype = "part";
        attr = part_attr "valve" "Presta Valve";
        path = Parser.parse "part[pid=bike]//part[pid=wheel]/components";
      }
  in
  (match Engine.apply ~policy:`Abort engine add_valve with
  | Error (Engine.Side_effects ids) ->
      Fmt.pr "  `Abort refuses: the wheel also occurs under %d other parent(s)@."
        (List.length ids)
  | _ -> Fmt.pr "  (expected a side-effect rejection)@.");
  (match Engine.apply ~policy:`Proceed engine add_valve with
  | Ok r ->
      Fmt.pr "  `Proceed applies it everywhere; ΔR = %a@."
        Rxv_relational.Group_update.pp r.Engine.delta_r
  | Error r -> Fmt.pr "  rejected: %a@." Engine.pp_rejection r);

  (* The e-bike drops the shared wheel for a bespoke one. Only the
     containment edge goes; the wheel assembly survives under the city
     bike. *)
  Fmt.pr "@.Removing the standard wheel from the e-bike only:@.";
  let drop_wheel =
    Xupdate.Delete (Parser.parse "part[pid=ebike]/components/part[pid=wheel]")
  in
  (match Engine.apply ~policy:`Proceed engine drop_wheel with
  | Ok r ->
      Fmt.pr "  ΔR = %a@." Rxv_relational.Group_update.pp r.Engine.delta_r
  | Error r -> Fmt.pr "  rejected: %a@." Engine.pp_rejection r);

  (match Engine.check_consistency engine with
  | Ok () -> Fmt.pr "@.consistency check: OK@."
  | Error m -> Fmt.pr "@.consistency check FAILED: %s@." m);
  Fmt.pr "@.Final catalogue:@.%a@." Tree.pp (Engine.to_tree engine)
